#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

namespace rlbf::obs {

namespace {

/// Per-name aggregate under construction. The histogram (the registry's
/// duration layout) feeds the deterministic percentile estimates.
struct Agg {
  Agg() : hist(duration_buckets()) {}
  Histogram hist;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double self_seconds = 0.0;
};

std::string fixed6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    out += c;
    if (c == '"') out += '"';  // RFC 4180: quotes double inside quotes
  }
  out += "\"";
  return out;
}

}  // namespace

std::vector<ProfileRow> profile_report(
    const std::vector<PidTraceEvent>& events) {
  // Group per (pid, tid): nesting only means something within one
  // thread of one process.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::size_t>>
      lanes;
  for (std::size_t i = 0; i < events.size(); ++i) {
    lanes[{events[i].pid, events[i].event.tid}].push_back(i);
  }

  // self[i] starts as the event's own duration; each nested child
  // subtracts its (overlapping) duration from its immediate parent.
  std::vector<std::int64_t> self_us(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    self_us[i] = events[i].event.dur_us;
  }

  for (auto& [lane, indices] : lanes) {
    // Start ascending; on a tie the longer span first, so a parent
    // precedes children starting the same microsecond. The final name
    // tiebreak makes the sweep independent of input order.
    std::sort(indices.begin(), indices.end(),
              [&](std::size_t a, std::size_t b) {
                const TraceEvent& ea = events[a].event;
                const TraceEvent& eb = events[b].event;
                if (ea.ts_us != eb.ts_us) return ea.ts_us < eb.ts_us;
                if (ea.dur_us != eb.dur_us) return ea.dur_us > eb.dur_us;
                return ea.name < eb.name;
              });
    struct Open {
      std::int64_t end_us;
      std::size_t index;
    };
    std::vector<Open> stack;
    for (const std::size_t i : indices) {
      const TraceEvent& ev = events[i].event;
      while (!stack.empty() && stack.back().end_us <= ev.ts_us) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        const Open& parent = stack.back();
        // Only the part inside the parent counts against its self
        // time; clock-alignment skew across merged traces can make a
        // child spill past its parent's end.
        const std::int64_t overlap =
            std::min(ev.dur_us, parent.end_us - ev.ts_us);
        if (overlap > 0) self_us[parent.index] -= overlap;
      }
      if (ev.dur_us > 0) stack.push_back({ev.ts_us + ev.dur_us, i});
    }
  }

  std::map<std::string, Agg> by_name;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i].event;
    Agg& agg = by_name.try_emplace(ev.name).first->second;
    const double dur_s = static_cast<double>(ev.dur_us) * 1e-6;
    agg.count += 1;
    agg.total_seconds += dur_s;
    agg.self_seconds +=
        static_cast<double>(std::max<std::int64_t>(self_us[i], 0)) * 1e-6;
    agg.hist.observe(dur_s);
  }

  std::vector<ProfileRow> rows;
  rows.reserve(by_name.size());
  for (const auto& [name, agg] : by_name) {
    ProfileRow row;
    row.name = name;
    row.count = agg.count;
    row.total_seconds = agg.total_seconds;
    row.self_seconds = agg.self_seconds;
    row.mean_seconds =
        agg.count > 0 ? agg.total_seconds / static_cast<double>(agg.count)
                      : 0.0;
    const Histogram::Snapshot snap = agg.hist.snapshot();
    row.p50_seconds = percentile(snap, 0.50);
    row.p95_seconds = percentile(snap, 0.95);
    row.p99_seconds = percentile(snap, 0.99);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              if (a.self_seconds != b.self_seconds) {
                return a.self_seconds > b.self_seconds;
              }
              if (a.total_seconds != b.total_seconds) {
                return a.total_seconds > b.total_seconds;
              }
              return a.name < b.name;
            });
  return rows;
}

void write_profile_table(std::ostream& os, const std::vector<ProfileRow>& rows,
                         std::size_t top) {
  const std::size_t shown =
      top == 0 ? rows.size() : std::min(top, rows.size());
  static const char* const headers[] = {"span",   "count", "self_s", "total_s",
                                        "mean_s", "p50_s", "p95_s",  "p99_s"};
  constexpr std::size_t kCols = 8;
  std::vector<std::vector<std::string>> cells;
  cells.reserve(shown);
  for (std::size_t i = 0; i < shown; ++i) {
    const ProfileRow& r = rows[i];
    cells.push_back({r.name, std::to_string(r.count), fixed6(r.self_seconds),
                     fixed6(r.total_seconds), fixed6(r.mean_seconds),
                     fixed6(r.p50_seconds), fixed6(r.p95_seconds),
                     fixed6(r.p99_seconds)});
  }
  std::size_t width[kCols];
  for (std::size_t c = 0; c < kCols; ++c) {
    width[c] = std::string(headers[c]).size();
    for (const auto& row : cells) width[c] = std::max(width[c], row[c].size());
  }
  for (std::size_t c = 0; c < kCols; ++c) {
    if (c > 0) os << "  ";
    // Name column left-aligned, numbers right-aligned.
    const std::string& h = headers[c];
    if (c == 0) {
      os << h << std::string(width[c] - h.size(), ' ');
    } else {
      os << std::string(width[c] - h.size(), ' ') << h;
    }
  }
  os << "\n";
  for (const auto& row : cells) {
    for (std::size_t c = 0; c < kCols; ++c) {
      if (c > 0) os << "  ";
      if (c == 0) {
        os << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        os << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << "\n";
  }
  if (shown < rows.size()) {
    os << "(" << rows.size() - shown << " more span name"
       << (rows.size() - shown == 1 ? "" : "s") << " below --top=" << top
       << ")\n";
  }
}

void write_profile_csv(std::ostream& os, const std::vector<ProfileRow>& rows) {
  os << "span,count,self_s,total_s,mean_s,p50_s,p95_s,p99_s\n";
  for (const ProfileRow& r : rows) {
    os << csv_field(r.name) << "," << r.count << "," << fixed6(r.self_seconds)
       << "," << fixed6(r.total_seconds) << "," << fixed6(r.mean_seconds)
       << "," << fixed6(r.p50_seconds) << "," << fixed6(r.p95_seconds) << ","
       << fixed6(r.p99_seconds) << "\n";
  }
}

bool save_profile_csv(const std::string& path,
                      const std::vector<ProfileRow>& rows) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_profile_csv(os, rows);
  os.flush();
  return static_cast<bool>(os);
}

std::vector<WorkerProfile> profile_report_by_worker(
    const std::vector<PidTraceEvent>& events,
    const std::map<std::uint32_t, std::string>& process_names) {
  std::map<std::uint32_t, std::vector<PidTraceEvent>> by_pid;
  for (const PidTraceEvent& ev : events) by_pid[ev.pid].push_back(ev);
  std::vector<WorkerProfile> workers;
  workers.reserve(by_pid.size());
  for (auto& [pid, slice] : by_pid) {
    WorkerProfile worker;
    worker.pid = pid;
    const auto it = process_names.find(pid);
    worker.name =
        it != process_names.end() ? it->second : "pid" + std::to_string(pid);
    worker.rows = profile_report(slice);
    workers.push_back(std::move(worker));
  }
  return workers;
}

void write_worker_profile_table(std::ostream& os,
                                const std::vector<WorkerProfile>& workers,
                                std::size_t top) {
  bool first = true;
  for (const WorkerProfile& worker : workers) {
    if (!first) os << "\n";
    first = false;
    os << "== " << worker.name << " (pid " << worker.pid << ") ==\n";
    write_profile_table(os, worker.rows, top);
  }
}

void write_worker_profile_csv(std::ostream& os,
                              const std::vector<WorkerProfile>& workers) {
  os << "pid,worker,span,count,self_s,total_s,mean_s,p50_s,p95_s,p99_s\n";
  for (const WorkerProfile& worker : workers) {
    for (const ProfileRow& r : worker.rows) {
      os << worker.pid << "," << csv_field(worker.name) << ","
         << csv_field(r.name) << "," << r.count << "," << fixed6(r.self_seconds)
         << "," << fixed6(r.total_seconds) << "," << fixed6(r.mean_seconds)
         << "," << fixed6(r.p50_seconds) << "," << fixed6(r.p95_seconds) << ","
         << fixed6(r.p99_seconds) << "\n";
    }
  }
}

bool save_worker_profile_csv(const std::string& path,
                             const std::vector<WorkerProfile>& workers) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_worker_profile_csv(os, workers);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace rlbf::obs
