#include "obs/series.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"

namespace rlbf::obs {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("cannot open series file: " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) {
    throw std::runtime_error("cannot read series file: " + path);
  }
  std::string text = buf.str();
  if (text.empty()) {
    throw std::runtime_error("series file is empty: " + path);
  }
  return text;
}

std::string line_origin(const std::string& origin, std::size_t line_no) {
  return origin + ":" + std::to_string(line_no);
}

[[noreturn]] void fail(const std::string& origin, std::size_t line_no,
                       const std::string& what) {
  throw std::runtime_error(line_origin(origin, line_no) + ": " + what);
}

/// A strictly-typed integer member: a JSON number member that must be
/// present. (json::Value stores doubles; series steps stay well inside
/// the exactly-representable range.)
std::int64_t int_member(const json::Value& obj, const std::string& key,
                        const std::string& origin, std::size_t line_no) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    fail(origin, line_no, "expected number member \"" + key + "\"");
  }
  return static_cast<std::int64_t>(v->number);
}

}  // namespace

// ----------------------------------------------------------- recorder

SeriesRecorder::SeriesRecorder() {
  // The pair is latched together — same pattern as the trace anchor —
  // so wall stamps are monotonic (steady elapsed) yet placeable on the
  // cross-process wall-clock timebase.
  steady_anchor_ = std::chrono::steady_clock::now();
  epoch_anchor_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
}

void SeriesRecorder::record(const std::string& name, std::int64_t step,
                            double value) {
  const std::int64_t wall_us =
      epoch_anchor_us_ +
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - steady_anchor_)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  series_[name].push_back({step, value, wall_us});
}

std::vector<Series> SeriesRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Series> out;
  out.reserve(series_.size());
  for (const auto& [name, points] : series_) {
    Series s;
    s.name = name;
    s.points = points;
    out.push_back(std::move(s));
  }
  return out;
}

bool SeriesRecorder::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.empty();
}

// ------------------------------------------------------------- file IO

void write_series_jsonl(std::ostream& os, const std::vector<Series>& series,
                        std::int64_t epoch_anchor_us) {
  os << "{\"meta\": \"series\", \"version\": 1, \"epoch_anchor_us\": "
     << epoch_anchor_us << "}\n";
  for (const Series& s : series) {
    for (const SeriesPoint& p : s.points) {
      os << "{\"series\": \"" << escape(s.name) << "\", \"step\": " << p.step
         << ", \"value\": " << format_number(p.value)
         << ", \"wall_us\": " << p.wall_us;
      if (!s.source.empty()) {
        os << ", \"source\": \"" << escape(s.source) << "\"";
      }
      os << "}\n";
    }
  }
}

bool save_series_jsonl(const std::string& path,
                       const std::vector<Series>& series,
                       std::int64_t epoch_anchor_us) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_series_jsonl(os, series, epoch_anchor_us);
  os.flush();
  return static_cast<bool>(os);
}

SeriesDoc parse_series_jsonl(const std::string& text,
                             const std::string& origin) {
  SeriesDoc doc;
  // (name, source) -> index into doc.series; points stay in file order.
  std::map<std::pair<std::string, std::string>, std::size_t> index;
  std::size_t line_no = 0;
  bool saw_meta = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string line = nl == std::string::npos ? text.substr(pos)
                                               : text.substr(pos, nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;

    // json::parse already rejects truncated lines and trailing garbage,
    // naming the (origin:line) and byte offset.
    const json::Value v = json::parse(line, line_origin(origin, line_no));
    if (!v.is_object()) {
      fail(origin, line_no, "expected a JSON object");
    }
    if (!saw_meta) {
      // The header line is mandatory: its absence means the file is not
      // a series document (or lost its first line), and silently
      // parsing it as points would hide that.
      const json::Value* meta = v.find("meta");
      if (meta == nullptr || !meta->is_string() || meta->text != "series") {
        fail(origin, line_no,
             "expected the series meta header "
             "{\"meta\": \"series\", \"version\": 1, ...}");
      }
      if (int_member(v, "version", origin, line_no) != 1) {
        fail(origin, line_no, "unsupported series version");
      }
      doc.epoch_anchor_us = int_member(v, "epoch_anchor_us", origin, line_no);
      saw_meta = true;
      continue;
    }

    const json::Value* name = v.find("series");
    if (name == nullptr || !name->is_string()) {
      fail(origin, line_no, "expected string member \"series\"");
    }
    const json::Value* value = v.find("value");
    if (value == nullptr || !value->is_number()) {
      fail(origin, line_no, "expected number member \"value\"");
    }
    SeriesPoint point;
    point.step = int_member(v, "step", origin, line_no);
    point.value = value->number;
    if (const json::Value* wall = v.find("wall_us")) {
      if (!wall->is_number()) {
        fail(origin, line_no, "expected number member \"wall_us\"");
      }
      point.wall_us = static_cast<std::int64_t>(wall->number);
    }
    std::string source;
    if (const json::Value* src = v.find("source")) {
      if (!src->is_string()) {
        fail(origin, line_no, "expected string member \"source\"");
      }
      source = src->text;
    }

    const auto key = std::make_pair(name->text, source);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, doc.series.size()).first;
      Series s;
      s.name = name->text;
      s.source = source;
      doc.series.push_back(std::move(s));
    }
    doc.series[it->second].points.push_back(point);
  }
  if (!saw_meta) {
    throw std::runtime_error(origin + ": no series meta header found");
  }
  std::sort(doc.series.begin(), doc.series.end(),
            [](const Series& a, const Series& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.source < b.source;
            });
  return doc;
}

SeriesDoc load_series_file(const std::string& path) {
  return parse_series_jsonl(read_file(path), path);
}

// --------------------------------------------------------------- merge

SeriesDoc merge_series(const std::vector<LabeledSeries>& docs) {
  if (docs.empty()) {
    throw std::invalid_argument("merge_series: no documents");
  }
  for (std::size_t i = 0; i < docs.size(); ++i) {
    for (std::size_t j = i + 1; j < docs.size(); ++j) {
      if (docs[i].label == docs[j].label) {
        throw std::invalid_argument("merge_series: duplicate label \"" +
                                    docs[i].label + "\"");
      }
    }
  }
  SeriesDoc merged;
  std::map<std::pair<std::string, std::string>, std::size_t> index;
  for (const LabeledSeries& doc : docs) {
    if (doc.doc.epoch_anchor_us != 0 &&
        (merged.epoch_anchor_us == 0 ||
         doc.doc.epoch_anchor_us < merged.epoch_anchor_us)) {
      merged.epoch_anchor_us = doc.doc.epoch_anchor_us;
    }
    for (const Series& s : doc.doc.series) {
      // An untagged series picks up its document's label; a tagged one
      // (an earlier merge's output) keeps its tag — that is what makes
      // nested merges associative.
      const std::string source = s.source.empty() ? doc.label : s.source;
      const auto key = std::make_pair(s.name, source);
      auto it = index.find(key);
      if (it == index.end()) {
        it = index.emplace(key, merged.series.size()).first;
        Series out;
        out.name = s.name;
        out.source = source;
        merged.series.push_back(std::move(out));
      }
      auto& points = merged.series[it->second].points;
      points.insert(points.end(), s.points.begin(), s.points.end());
    }
  }
  std::sort(merged.series.begin(), merged.series.end(),
            [](const Series& a, const Series& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.source < b.source;
            });
  return merged;
}

// ------------------------------------------------------------- sampler

RegistrySampler::RegistrySampler(SeriesRecorder& recorder, Options options)
    : recorder_(recorder), options_(std::move(options)) {}

RegistrySampler::~RegistrySampler() { stop(); }

void RegistrySampler::sample_once() {
  std::lock_guard<std::mutex> lock(sample_mu_);
  Registry& registry = Registry::instance();
  const std::vector<std::string> counters = registry.counter_names();
  const std::vector<std::string> gauges = registry.gauge_names();
  // An empty registry records nothing and consumes no step: a run that
  // never enabled metrics keeps its series file free of registry data.
  if (counters.empty() && gauges.empty()) return;
  const std::int64_t step = next_step_++;
  for (const std::string& name : counters) {
    const std::uint64_t value = registry.counter(name).value();
    std::uint64_t& last = last_counters_[name];
    // A registry reset() mid-run restarts the delta from the new value.
    const std::uint64_t delta = value >= last ? value - last : value;
    last = value;
    recorder_.record(options_.prefix + name, step,
                     static_cast<double>(delta));
  }
  for (const std::string& name : gauges) {
    recorder_.record(options_.prefix + name, step,
                     registry.gauge(name).value());
  }
}

void RegistrySampler::start() {
  if (options_.interval_seconds <= 0.0) return;
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] {
    const auto interval =
        std::chrono::duration<double>(options_.interval_seconds);
    std::unique_lock<std::mutex> lock(thread_mu_);
    while (!cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      lock.unlock();
      sample_once();
      lock.lock();
    }
  });
}

void RegistrySampler::stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_requested_ = true;
    worker = std::move(thread_);
  }
  cv_.notify_all();
  if (worker.joinable()) worker.join();
}

}  // namespace rlbf::obs
