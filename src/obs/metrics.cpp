#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace rlbf::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Minimal JSON string escaping; metric names are programmer-chosen but
/// a stray quote must never produce an invalid dump.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Lock-free max/min update over std::atomic<double>.
void update_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void update_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void add_double(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// Shortest-round-trip rendering, C locale (std::to_chars). The dump
// must be byte-stable for equal values on every host.
std::string format_number(double value) {
  if (std::isnan(value)) return "null";
  if (std::isinf(value)) return value > 0 ? "1e999" : "-1e999";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

HistogramLayout exponential_buckets(double start, double factor,
                                    std::size_t count) {
  if (!(start > 0.0) || !(factor > 1.0) || count == 0) {
    throw std::invalid_argument(
        "exponential_buckets: need start > 0, factor > 1, count >= 1");
  }
  HistogramLayout layout;
  layout.upper_bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    layout.upper_bounds.push_back(bound);
    bound *= factor;
  }
  return layout;
}

const HistogramLayout& duration_buckets() {
  static const HistogramLayout layout = exponential_buckets(1e-6, 4.0, 14);
  return layout;
}

Histogram::Histogram(HistogramLayout layout)
    : layout_(std::move(layout)),
      buckets_(layout_.upper_bounds.size() + 1) {
  if (!std::is_sorted(layout_.upper_bounds.begin(),
                      layout_.upper_bounds.end()) ||
      std::adjacent_find(layout_.upper_bounds.begin(),
                         layout_.upper_bounds.end()) !=
          layout_.upper_bounds.end()) {
    throw std::invalid_argument(
        "Histogram: bucket upper bounds must be strictly ascending");
  }
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(layout_.upper_bounds.begin(),
                                   layout_.upper_bounds.end(), value);
  buckets_[static_cast<std::size_t>(it - layout_.upper_bounds.begin())]
      .fetch_add(1, std::memory_order_relaxed);
  add_double(sum_, value);
  // First observation seeds min/max: count_ incremented LAST so a racing
  // snapshot never sees count > 0 with unseeded extremes... snapshots
  // racing writers are approximate by contract anyway; keep it simple
  // and exact for quiesced reads.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    update_min(min_, value);
    update_max(max_, value);
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.upper_bounds = layout_.upper_bounds;
  snap.bucket_counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    snap.bucket_counts.push_back(b.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double percentile(const Histogram::Snapshot& snapshot, double q) {
  if (snapshot.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(snapshot.count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < snapshot.bucket_counts.size(); ++i) {
    const double in_bucket = static_cast<double>(snapshot.bucket_counts[i]);
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // The covering bucket: interpolate linearly between its bounds. The
    // first bucket starts at 0 (durations and counts are non-negative);
    // the terminal +inf bucket is bounded above by the exact max.
    double lo = i == 0 ? 0.0 : snapshot.upper_bounds[i - 1];
    double hi = i < snapshot.upper_bounds.size() ? snapshot.upper_bounds[i]
                                                 : snapshot.max;
    if (hi < lo) hi = lo;
    const double fraction =
        in_bucket > 0.0 ? (rank - cumulative) / in_bucket : 1.0;
    double value = lo + (hi - lo) * fraction;
    // The exact extremes always bound the estimate — interpolation can
    // never report a value outside what was actually observed.
    if (value < snapshot.min) value = snapshot.min;
    if (value > snapshot.max) value = snapshot.max;
    return value;
  }
  return snapshot.max;
}

Histogram::Snapshot merge_histogram(const Histogram::Snapshot& a,
                                    const Histogram::Snapshot& b) {
  if (a.upper_bounds != b.upper_bounds ||
      a.bucket_counts.size() != b.bucket_counts.size()) {
    throw std::invalid_argument(
        "merge_histogram: bucket layouts differ (" +
        std::to_string(a.upper_bounds.size()) + " vs " +
        std::to_string(b.upper_bounds.size()) + " finite bounds)");
  }
  Histogram::Snapshot merged;
  merged.upper_bounds = a.upper_bounds;
  merged.bucket_counts.reserve(a.bucket_counts.size());
  for (std::size_t i = 0; i < a.bucket_counts.size(); ++i) {
    merged.bucket_counts.push_back(a.bucket_counts[i] + b.bucket_counts[i]);
  }
  merged.count = a.count + b.count;
  merged.sum = a.sum + b.sum;
  // min/max only mean anything on a side that observed something.
  if (a.count == 0) {
    merged.min = b.min;
    merged.max = b.max;
  } else if (b.count == 0) {
    merged.min = a.min;
    merged.max = a.max;
  } else {
    merged.min = std::min(a.min, b.min);
    merged.max = std::max(a.max, b.max);
  }
  return merged;
}

void write_histogram_json(std::ostream& os, const Histogram::Snapshot& snap) {
  os << "{\"count\": " << snap.count << ", \"sum\": " << format_number(snap.sum)
     << ", \"min\": " << format_number(snap.min)
     << ", \"max\": " << format_number(snap.max)
     << ", \"p50\": " << format_number(percentile(snap, 0.50))
     << ", \"p95\": " << format_number(percentile(snap, 0.95))
     << ", \"p99\": " << format_number(percentile(snap, 0.99))
     << ", \"buckets\": [";
  for (std::size_t i = 0; i < snap.bucket_counts.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"le\": ";
    if (i < snap.upper_bounds.size()) {
      os << "\"" << format_number(snap.upper_bounds[i]) << "\"";
    } else {
      os << "\"inf\"";
    }
    os << ", \"count\": " << snap.bucket_counts[i] << "}";
  }
  os << "]}";
}

// ---------------------------------------------------------------- Registry

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: sorted iteration AND stable node addresses — references
  // handed out survive every later registration (but not a
  // clear_for_testing, which bumps `generation` so CachedCounter
  // handles re-resolve instead of dangling).
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Histogram> histograms;
  std::atomic<std::uint64_t> generation{0};
};

Registry& Registry::instance() {
  // Leaked singleton: metric references must stay valid through static
  // destruction (a destructor logging a final count must not crash).
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.counters[name];
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.gauges[name];
}

Histogram& Registry::histogram(const std::string& name,
                               const HistogramLayout& layout) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.histograms.find(name);
  if (it != im.histograms.end()) {
    if (it->second.upper_bounds() != layout.upper_bounds) {
      throw std::invalid_argument(
          "histogram '" + name +
          "' re-registered with a different bucket layout");
    }
    return it->second;
  }
  // try_emplace: Histogram holds atomics and is neither copyable nor
  // movable, so it must be constructed in place inside the node.
  return im.histograms.try_emplace(name, layout).first->second;
}

std::vector<std::string> Registry::counter_names() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<std::string> names;
  names.reserve(im.counters.size());
  for (const auto& [name, metric] : im.counters) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::gauge_names() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<std::string> names;
  names.reserve(im.gauges.size());
  for (const auto& [name, metric] : im.gauges) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::histogram_names() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<std::string> names;
  names.reserve(im.histograms.size());
  for (const auto& [name, metric] : im.histograms) names.push_back(name);
  return names;
}

void Registry::write_json(std::ostream& os) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, metric] : im.counters) {
    os << (first ? "\n" : ",\n") << "    \"" << escape(name)
       << "\": " << metric.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, metric] : im.gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << escape(name)
       << "\": " << format_number(metric.value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, metric] : im.histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << escape(name) << "\": ";
    write_histogram_json(os, metric.snapshot());
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

std::string Registry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, metric] : im.counters) metric.reset();
  for (auto& [name, metric] : im.gauges) metric.reset();
  for (auto& [name, metric] : im.histograms) metric.reset();
}

std::uint64_t Registry::generation() const {
  return impl().generation.load(std::memory_order_acquire);
}

void Registry::clear_for_testing() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.counters.clear();
  im.gauges.clear();
  im.histograms.clear();
  // Bump AFTER the maps are emptied (still under the lock): a handle
  // that observes the new generation re-resolves into the new maps.
  im.generation.fetch_add(1, std::memory_order_release);
}

Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(const std::string& name, const HistogramLayout& layout) {
  return Registry::instance().histogram(name, layout);
}

bool save_metrics_json(const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  Registry::instance().write_json(os);
  os.flush();
  return static_cast<bool>(os);
}

// ------------------------------------------------------------- ScopedTimer

ScopedTimer::ScopedTimer(const char* name) {
  if (!enabled()) return;  // inactive: no clock read, no allocation
  name_ = name;
  start_ = std::chrono::steady_clock::now();
  active_ = true;
}

ScopedTimer::ScopedTimer(Histogram& sink) {
  if (!enabled()) return;
  sink_ = &sink;
  start_ = std::chrono::steady_clock::now();
  active_ = true;
}

ScopedTimer::~ScopedTimer() { stop(); }

double ScopedTimer::stop() {
  if (!active_) return 0.0;
  active_ = false;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  Histogram& sink =
      sink_ != nullptr ? *sink_ : histogram(name_, duration_buckets());
  sink.observe(seconds);
  return seconds;
}

}  // namespace rlbf::obs
