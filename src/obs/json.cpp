#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <limits>
#include <stdexcept>

namespace rlbf::obs::json {

namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  Value parse_document() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(origin_ + ": " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.text = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          Value v;
          v.kind = Value::Kind::Bool;
          v.boolean = true;
          return v;
        }
        fail("malformed literal");
      case 'f':
        if (consume_literal("false")) {
          Value v;
          v.kind = Value::Kind::Bool;
          return v;
        }
        fail("malformed literal");
      case 'n':
        if (consume_literal("null")) return Value{};
        fail("malformed literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected a string object key");
      std::string key = parse_string();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  /// UTF-8-encode one code point (what \uXXXX escapes decode to).
  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("malformed \\u escape");
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;  // surrogate pair
            const std::uint32_t low = parse_hex4();
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown string escape");
      }
    }
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Value v;
    v.kind = Value::Kind::Number;
    // from_chars: locale-independent, exact round trip of the shortest
    // representations the obs dumps emit. "1e999" (the dumps' +inf
    // rendering) overflows to result_out_of_range — map it back to inf.
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_,
                                     v.number);
    if (res.ec == std::errc::result_out_of_range) {
      v.number = text_[start] == '-' ? -std::numeric_limits<double>::infinity()
                                     : std::numeric_limits<double>::infinity();
    } else if (res.ec != std::errc() ||
               res.ptr != text_.data() + pos_ || start == pos_) {
      pos_ = start;
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  const std::string& origin_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("missing JSON member '" + key + "'");
  }
  return *value;
}

double Value::number_at(const std::string& key) const {
  const Value& value = at(key);
  if (!value.is_number()) {
    throw std::runtime_error("JSON member '" + key + "' is not a number");
  }
  return value.number;
}

const std::string& Value::string_at(const std::string& key) const {
  const Value& value = at(key);
  if (!value.is_string()) {
    throw std::runtime_error("JSON member '" + key + "' is not a string");
  }
  return value.text;
}

Value parse(const std::string& text, const std::string& origin) {
  return Parser(text, origin).parse_document();
}

}  // namespace rlbf::obs::json
