// A minimal JSON reader for the observability sinks this repo emits —
// metrics registry dumps, Chrome trace_event documents, and bench
// reports. It exists so obs::merge / obs::profile / `rlbf_run bench
// --compare` can consume those files without an external dependency,
// and it stays inside obs (standard library only) so the layering
// contract in obs/metrics.h holds.
//
// Scope: full JSON syntax (objects, arrays, strings with escapes,
// numbers, bools, null), source-order-preserving objects, and
// locale-independent number parsing (std::from_chars). Errors are
// std::runtime_error naming the document origin and byte offset, so a
// truncated worker sidecar fails with a message, never a crash.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rlbf::obs::json {

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;                                    // String payload
  std::vector<Value> items;                            // Array elements
  std::vector<std::pair<std::string, Value>> members;  // Object, source order

  bool is_null() const { return kind == Kind::Null; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// First member with this key, or nullptr when absent (or when this
  /// value is not an object at all).
  const Value* find(const std::string& key) const;

  /// find(), but a named std::runtime_error when the key is missing.
  const Value& at(const std::string& key) const;

  /// at(key).number, throwing when the member is not a number.
  double number_at(const std::string& key) const;

  /// at(key).text, throwing when the member is not a string.
  const std::string& string_at(const std::string& key) const;
};

/// Parse one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error). `origin` names the document in every
/// error message — pass the file path.
Value parse(const std::string& text, const std::string& origin = "json");

}  // namespace rlbf::obs::json
