#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

namespace rlbf::obs {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_anchor_latched{false};

/// All timestamps are measured from one per-process anchor so a trace
/// always starts near t=0. The anchor is latched on first use, and the
/// wall clock is read at the same instant so span timestamps can be
/// placed on a cross-process timebase (trace_epoch_anchor_us).
struct Anchor {
  std::chrono::steady_clock::time_point steady;
  std::int64_t epoch_us = 0;
};

const Anchor& trace_anchor() {
  static const Anchor anchor = [] {
    Anchor a;
    a.steady = std::chrono::steady_clock::now();
    a.epoch_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count();
    return a;
  }();
  return anchor;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - trace_anchor().steady)
      .count();
}

/// Per-thread event buffer. Threads append under their own mutex (only
/// contended by a concurrent dump); the global list keeps buffers alive
/// after their thread exits so pool workers' spans survive pool
/// teardown.
struct ThreadBuffer {
  std::mutex mu;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

struct BufferList {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferList& buffer_list() {
  // Leaked: spans may finish during static destruction.
  static BufferList* list = new BufferList();
  return *list;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferList& list = buffer_list();
    std::lock_guard<std::mutex> lock(list.mu);
    b->tid = static_cast<std::uint32_t>(list.buffers.size());
    list.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void record(std::string name, const char* category, std::int64_t ts_us,
            std::int64_t dur_us) {
  ThreadBuffer& buf = local_buffer();
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = category;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = buf.tid;
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(ev));
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

void set_tracing(bool on) {
  if (on) {
    trace_anchor();  // latch the anchor before the first span
    g_anchor_latched.store(true, std::memory_order_relaxed);
  }
  g_tracing.store(on, std::memory_order_relaxed);
}

std::int64_t trace_epoch_anchor_us() {
  return g_anchor_latched.load(std::memory_order_relaxed)
             ? trace_anchor().epoch_us
             : 0;
}

Span::Span(const char* name, const char* category) {
  if (!tracing_enabled()) return;  // inactive: no clock read, no allocation
  name_ = name;
  category_ = category;
  start_us_ = now_us();
  active_ = true;
}

Span Span::labeled(const std::string& name, const char* category) {
  Span span;
  if (!tracing_enabled()) return span;
  span.label_ = name;  // copy only when a span will actually be recorded
  span.category_ = category;
  span.start_us_ = now_us();
  span.active_ = true;
  return span;
}

Span::Span(Span&& other) noexcept
    : name_(other.name_),
      label_(std::move(other.label_)),
      category_(other.category_),
      start_us_(other.start_us_),
      active_(other.active_) {
  other.active_ = false;
}

Span::~Span() { end(); }

void Span::end() {
  if (!active_) return;
  active_ = false;
  const std::int64_t end_us = now_us();
  record(name_ != nullptr ? std::string(name_) : std::move(label_), category_,
         start_us_, end_us - start_us_);
}

void trace_mark(const std::string& name, const char* category) {
  if (!tracing_enabled()) return;
  record(name, category, now_us(), 0);
}

std::int64_t trace_now_us() {
  if (!tracing_enabled()) return 0;
  return now_us();
}

std::vector<TraceEvent> trace_events_snapshot() {
  std::vector<TraceEvent> out;
  BufferList& list = buffer_list();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(list.mu);
    buffers = list.buffers;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

void write_trace_json(std::ostream& os) {
  const std::vector<TraceEvent> events = trace_events_snapshot();
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : events) {
    os << (first ? "\n" : ",\n") << "  {\"name\": \"" << escape(ev.name)
       << "\", \"cat\": \"" << escape(ev.category)
       << "\", \"ph\": \"X\", \"ts\": " << ev.ts_us
       << ", \"dur\": " << ev.dur_us << ", \"pid\": 1, \"tid\": " << ev.tid
       << "}";
    first = false;
  }
  // epochAnchorUs: the wall-clock instant ts=0 corresponds to. Chrome
  // and Perfetto ignore unknown top-level keys; obs::merge uses it to
  // align traces from different processes onto one timeline.
  os << (first ? "" : "\n") << "], \"epochAnchorUs\": "
     << trace_epoch_anchor_us() << "}\n";
}

bool save_trace_json(const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_trace_json(os);
  os.flush();
  return static_cast<bool>(os);
}

void clear_trace() {
  BufferList& list = buffer_list();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(list.mu);
    buffers = list.buffers;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->events.clear();
  }
}

}  // namespace rlbf::obs
