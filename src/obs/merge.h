// Fleet-wide aggregation of per-worker observability sinks.
//
// A distributed run (rlbf_run orchestrate / train --workers) produces
// one metrics dump and one trace per worker process, plus the
// supervisor's own. This module rolls those sidecars into single
// documents:
//
//   * merge_metrics — counters summed across workers, gauges
//     last-write-wins (tagged with the source that wrote them),
//     histograms bucket-merged (same layout required; a layout
//     mismatch throws, it is never silently folded).
//   * splice_traces — every worker's spans on one Chrome trace
//     timeline: each source document gets a fresh pid (plus a
//     process_name metadata event), and timestamps are shifted onto a
//     common timebase using each trace's wall-clock epoch anchor
//     (obs::trace_epoch_anchor_us), so worker spans line up with
//     supervisor spans the way they actually interleaved.
//
// Loading is strict but never crashy: a missing, empty, or malformed
// sidecar raises std::runtime_error naming the file — the supervisor
// reports which worker's sidecar is bad instead of dumping core or
// writing a silently wrong merge.
//
// Like the rest of obs, this depends on the standard library only.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbf::obs {

// ------------------------------------------------------------- metrics

/// One parsed metrics dump (the Registry::write_json format).
struct MetricsDoc {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
};

/// Parse a registry dump. `origin` names the document in errors.
MetricsDoc parse_metrics_json(const std::string& text,
                              const std::string& origin);

/// Read + parse a sidecar file. Missing, unreadable, or empty files
/// raise std::runtime_error naming the path.
MetricsDoc load_metrics_file(const std::string& path);

/// A worker's metrics tagged with its label ("worker0", "supervisor").
struct LabeledMetrics {
  std::string label;
  MetricsDoc doc;
};

/// The merged report. Counters are exact sums; gauges keep the LAST
/// source's value (docs are merged in input order, so put the
/// supervisor last when its view should win) tagged with that source;
/// histograms are bucket-merged.
struct MergedMetrics {
  struct TaggedGauge {
    double value = 0.0;
    std::string source;
  };
  std::vector<std::string> sources;  // input order
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, TaggedGauge> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
};

/// Merge in input order. Throws std::invalid_argument on an empty
/// input, a duplicate label, or a histogram layout mismatch (the error
/// names the metric and the sources involved).
MergedMetrics merge_metrics(const std::vector<LabeledMetrics>& docs);

/// Deterministic JSON rendering of the merged report: {"sources":
/// [...], "counters": {...}, "gauges": {"name": {"value": ..,
/// "source": ".."}}, "histograms": {"name": <histogram JSON>}}, keys
/// sorted, numbers shortest-round-trip.
void write_merged_metrics_json(std::ostream& os, const MergedMetrics& merged);
bool save_merged_metrics_json(const std::string& path,
                              const MergedMetrics& merged);

// --------------------------------------------------------------- trace

/// A trace event plus the pid it carried in its source document.
struct PidTraceEvent {
  TraceEvent event;
  std::uint32_t pid = 1;
};

/// One parsed Chrome trace document. epoch_anchor_us is 0 when the
/// document predates the anchor field or tracing was never enabled in
/// the producing process (such a trace splices unshifted).
/// process_names carries the "process_name" metadata rows of an earlier
/// splice (pid -> worker label, e.g. 1 -> "supervisor"), so a merged
/// fleet trace keeps its worker attribution when re-read
/// (`rlbf_run profile --by_worker`); empty for a single-process trace.
struct TraceDoc {
  std::vector<PidTraceEvent> events;
  std::int64_t epoch_anchor_us = 0;
  std::map<std::uint32_t, std::string> process_names;
};

TraceDoc parse_trace_json(const std::string& text, const std::string& origin);
TraceDoc load_trace_file(const std::string& path);

struct LabeledTrace {
  std::string label;
  TraceDoc doc;
};

/// All sources on one timeline. Every (source document, source pid)
/// pair maps to a fresh output pid — sequential from 1 in input order
/// — so colliding pids from independent processes can never shadow
/// each other. Timestamps are shifted by (doc anchor - earliest
/// anchor); documents without an anchor are left unshifted.
struct SplicedTrace {
  struct Process {
    std::uint32_t pid = 0;
    std::string name;  // "<label>" or "<label>/pid<src>" on collision
  };
  std::vector<Process> processes;
  std::vector<PidTraceEvent> events;   // input order, pids remapped
  std::int64_t epoch_anchor_us = 0;    // earliest source anchor (0 if none)
};

/// Throws std::invalid_argument on an empty input or duplicate label.
SplicedTrace splice_traces(const std::vector<LabeledTrace>& docs);

/// Chrome trace_event JSON: process_name metadata events first, then
/// every span, then the merged epochAnchorUs.
void write_spliced_trace_json(std::ostream& os, const SplicedTrace& spliced);
bool save_spliced_trace_json(const std::string& path,
                             const SplicedTrace& spliced);

}  // namespace rlbf::obs
