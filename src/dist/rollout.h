// The process transport of the actor/learner split: a rl::Collector
// that fans an epoch's sequences out to `rlbf_run collect-rollouts`
// worker subprocesses and reassembles their wire-format responses in
// sequence order.
//
// Per epoch: the learner's current model is checkpointed once to the
// scratch dir (save_model hook, exact-text round-trip), sequence i goes
// to worker i % W with its pre-drawn seed, and every worker job runs
// through the same dist::Launcher / dist::run_jobs machinery as the
// sweep/train orchestrator — so retries, failure injection, host
// round-robin, and stderr-tail failure reports come for free. Each
// worker's response file embeds a request fingerprint (worker args +
// epoch + worker index + seed subset), so a stale file from a previous
// epoch on a reused scratch dir can never be consumed.
//
// Because seeds are pre-drawn by the learner and results are indexed by
// sequence, the reassembled epoch is byte-identical to the in-process
// ThreadCollector at any worker count — the determinism contract of
// rl/collect.h.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/job.h"
#include "dist/launcher.h"
#include "rl/collect.h"

namespace rlbf::dist {

/// How the process transport runs its workers. `worker` + `worker_args`
/// must reconstruct the learner's training setup in another process
/// (`rlbf_run collect-rollouts --spec=... --seed=...`); the transport
/// appends the per-epoch flags (--seeds/--model/--out/--fingerprint/
/// --epoch/--epsilon) itself.
struct RolloutTransportOptions {
  /// Worker binary (normally the running rlbf_run itself).
  std::string worker;
  /// Subcommand flags that reconstruct the training setup remotely.
  std::vector<std::string> worker_args;
  /// Scratch directory for model checkpoints, per-job output dirs, and
  /// observability sidecars.
  std::string work_dir;
  /// Worker process count (clamped to the sequence count per epoch).
  std::size_t workers = 1;
  /// Retries per failed worker job (total attempts = retries + 1).
  std::size_t retries = 1;
  /// Per-attempt wall-clock cap in seconds (0 = no limit).
  double timeout_seconds = 0.0;
  /// Test hook: job id -> leading attempts forced to fail
  /// (dist::OrchestratorOptions::inject_failures).
  std::map<std::size_t, std::size_t> inject_failures;
  /// Ask workers for per-process observability sidecars
  /// (<work_dir>/worker<id>.metrics.json / .trace.json /
  /// .series.jsonl), recorded in the job specs for a later
  /// save_fleet_obs merge.
  bool worker_metrics = false;
  bool worker_trace = false;
  bool worker_series = false;
  /// Heartbeat interval for each epoch's job supervisor
  /// (dist::OrchestratorOptions::heartbeat_seconds); 0 disables it.
  double heartbeat_seconds = 30.0;
  /// Fired on every supervisor heartbeat (registry sampling hook).
  std::function<void()> on_heartbeat;
  /// Remote transport: when command_template is nonempty, jobs run
  /// through a CommandLauncher over these hosts instead of local
  /// fork/exec (same placeholders as `rlbf_run orchestrate`).
  std::vector<std::string> hosts;
  std::string command_template;
  std::string fetch_template;
  /// Serialized progress lines from the orchestrator.
  std::function<void(const std::string&)> on_event;
};

/// The subprocess rollout transport. slots() is 0: workers load the
/// checkpointed model themselves, the in-process SequenceFn never runs.
class ProcessCollector : public rl::Collector {
 public:
  /// Validates options (worker/work_dir/workers, template pairing) and
  /// constructs the launcher up front, so malformed transports fail
  /// before any epoch runs. Throws std::invalid_argument.
  explicit ProcessCollector(RolloutTransportOptions options);

  /// The learner's model writer: called once per epoch with the
  /// checkpoint path workers will load. Must be installed (by the
  /// training executor, which owns the agent) before collect().
  void set_save_model(std::function<void(const std::string&)> save_model) {
    save_model_ = std::move(save_model);
  }

  std::size_t slots(std::size_t n_sequences) const override {
    (void)n_sequences;
    return 0;
  }

  /// Fan plan.seeds out to worker jobs, run them to success or retry
  /// exhaustion, decode and reassemble. Throws std::runtime_error with
  /// the orchestrator's failure summary when any job exhausts its
  /// retries, and rl::WireError on a corrupt or mismatched response.
  std::vector<rl::SequenceResult> collect(const rl::CollectionPlan& plan,
                                          const rl::SequenceFn& fn) override;

  /// Every worker job launched so far (all epochs, launch order) — the
  /// supervisor merges their observability sidecars after training.
  const std::vector<JobSpec>& jobs() const { return jobs_; }

  const RolloutTransportOptions& options() const { return options_; }

 private:
  RolloutTransportOptions options_;
  std::unique_ptr<Launcher> launcher_;
  std::function<void(const std::string&)> save_model_;
  std::vector<JobSpec> jobs_;
};

/// The request fingerprint a worker's response must carry: a hash of
/// the worker args, epoch, worker index, and seed subset. Computed by
/// the supervisor when planning the job AND passed to the worker via
/// --fingerprint, so the wire check binds a file to exactly one request.
std::string rollout_request_fingerprint(
    const std::vector<std::string>& worker_args, std::size_t epoch,
    std::size_t worker_index, const std::vector<std::uint64_t>& seeds);

/// Comma-joined seed list for --seeds (and its inverse; the parser
/// throws std::invalid_argument naming a malformed element).
std::string format_seed_list(const std::vector<std::uint64_t>& seeds);
std::vector<std::uint64_t> parse_seed_list(const std::string& text);

}  // namespace rlbf::dist
