#include "dist/rollout.h"

#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "dist/orchestrator.h"
#include "exp/config.h"
#include "model/training_spec.h"
#include "rl/wire.h"

namespace rlbf::dist {

std::string format_seed_list(const std::vector<std::uint64_t>& seeds) {
  std::string out;
  for (const std::uint64_t s : seeds) {
    if (!out.empty()) out += ',';
    out += std::to_string(s);
  }
  return out;
}

std::vector<std::uint64_t> parse_seed_list(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  if (text.empty()) return seeds;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(start, end - start);
    std::uint64_t value = 0;
    if (!exp::parse_uint64(item, &value)) {
      throw std::invalid_argument("--seeds: bad seed '" + item +
                                  "' (expected a comma-separated uint64 list)");
    }
    seeds.push_back(value);
    start = end + 1;
  }
  return seeds;
}

std::string rollout_request_fingerprint(
    const std::vector<std::string>& worker_args, std::size_t epoch,
    std::size_t worker_index, const std::vector<std::uint64_t>& seeds) {
  // Canonical request text: every field newline-framed so no two
  // distinct requests can render identically.
  std::string canonical = "rollout-request v1\n";
  for (const std::string& arg : worker_args) canonical += "arg " + arg + "\n";
  canonical += "epoch " + std::to_string(epoch) + "\n";
  canonical += "worker " + std::to_string(worker_index) + "\n";
  canonical += "seeds " + format_seed_list(seeds) + "\n";
  return model::fnv1a_hex(canonical);
}

ProcessCollector::ProcessCollector(RolloutTransportOptions options)
    : options_(std::move(options)) {
  if (options_.worker.empty()) {
    throw std::invalid_argument("rollout transport: empty worker binary");
  }
  if (options_.work_dir.empty()) {
    throw std::invalid_argument("rollout transport: empty work_dir");
  }
  if (options_.workers == 0) {
    throw std::invalid_argument("rollout transport: workers must be >= 1");
  }
  if (!options_.command_template.empty()) {
    // CommandLauncher validates templates and hosts at construction.
    launcher_ = std::make_unique<CommandLauncher>(
        options_.command_template, options_.hosts, options_.fetch_template,
        options_.timeout_seconds);
  } else {
    if (!options_.hosts.empty()) {
      throw std::invalid_argument(
          "rollout transport: hosts given without a command template");
    }
    launcher_ = std::make_unique<LocalLauncher>(options_.timeout_seconds);
  }
}

std::vector<rl::SequenceResult> ProcessCollector::collect(
    const rl::CollectionPlan& plan, const rl::SequenceFn& fn) {
  (void)fn;  // workers produce sequences themselves; slots() is 0
  const std::size_t n = plan.seeds.size();
  std::vector<rl::SequenceResult> results(n);
  if (n == 0) return results;
  if (!save_model_) {
    throw std::logic_error(
        "rollout transport: set_save_model not installed before collect()");
  }

  std::filesystem::create_directories(options_.work_dir);
  const std::size_t epoch = plan.epoch;
  const std::string model_path =
      options_.work_dir + "/epoch" + std::to_string(epoch) + ".model";
  save_model_(model_path);

  // Round-robin by sequence index: worker w owns {i : i % W == w}. The
  // assignment is part of the determinism contract (ISSUE: store keys
  // identical across --rollout_workers=0/1/N), not a scheduling choice.
  const std::size_t n_workers = std::min(options_.workers, n);
  std::vector<std::vector<std::uint64_t>> worker_seeds(n_workers);
  for (std::size_t i = 0; i < n; ++i) {
    worker_seeds[i % n_workers].push_back(plan.seeds[i]);
  }

  std::vector<JobSpec> epoch_jobs;
  std::vector<std::string> fingerprints;
  epoch_jobs.reserve(n_workers);
  fingerprints.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    JobSpec job;
    // Ids unique across epochs (epoch is 1-based in plans) so fleet-obs
    // labels never collide and --inject_fail=0:1 hits epoch 1 worker 0.
    job.id = (epoch >= 1 ? epoch - 1 : 0) * n_workers + w;
    job.name = "rollout-e" + std::to_string(epoch) + "-w" + std::to_string(w) +
               "/" + std::to_string(n_workers);
    job.output_dir = options_.work_dir + "/e" + std::to_string(epoch) + ".w" +
                     std::to_string(w);
    const std::string out_path = job.output_dir + "/rollouts.bin";
    const std::string fingerprint = rollout_request_fingerprint(
        options_.worker_args, epoch, w, worker_seeds[w]);
    fingerprints.push_back(fingerprint);

    job.argv = {options_.worker, "collect-rollouts"};
    job.argv.insert(job.argv.end(), options_.worker_args.begin(),
                    options_.worker_args.end());
    job.argv.push_back("--seeds=" + format_seed_list(worker_seeds[w]));
    job.argv.push_back("--model=" + model_path);
    job.argv.push_back("--epoch=" + std::to_string(epoch));
    job.argv.push_back("--out=" + out_path);
    job.argv.push_back("--fingerprint=" + fingerprint);
    if (std::isfinite(plan.epsilon)) {
      job.argv.push_back("--epsilon=" + exp::format_double_exact(plan.epsilon));
    }
    if (options_.worker_metrics) {
      job.metrics_path = options_.work_dir + "/worker" + std::to_string(job.id) +
                         ".metrics.json";
      job.argv.push_back("--metrics_out=" + job.metrics_path);
    }
    if (options_.worker_trace) {
      job.trace_path = options_.work_dir + "/worker" + std::to_string(job.id) +
                       ".trace.json";
      job.argv.push_back("--trace_out=" + job.trace_path);
    }
    if (options_.worker_series) {
      job.series_path = options_.work_dir + "/worker" + std::to_string(job.id) +
                        ".series.jsonl";
      job.argv.push_back("--series_out=" + job.series_path);
    }
    epoch_jobs.push_back(std::move(job));
  }

  OrchestratorOptions run_options;
  run_options.max_parallel = n_workers;
  run_options.max_attempts = options_.retries + 1;
  run_options.inject_failures = options_.inject_failures;
  run_options.on_event = options_.on_event;
  run_options.heartbeat_seconds = options_.heartbeat_seconds;
  run_options.on_heartbeat = options_.on_heartbeat;
  const OrchestrationReport report =
      run_jobs(epoch_jobs, *launcher_, run_options);
  jobs_.insert(jobs_.end(), epoch_jobs.begin(), epoch_jobs.end());
  if (!report.all_ok) {
    throw std::runtime_error("rollout collection failed (epoch " +
                             std::to_string(epoch) + "):\n" +
                             report.failure_summary());
  }

  for (std::size_t w = 0; w < n_workers; ++w) {
    const std::string out_path = epoch_jobs[w].output_dir + "/rollouts.bin";
    std::vector<rl::SequenceResult> worker_results =
        rl::load_rollouts(out_path, fingerprints[w]);
    if (worker_results.size() != worker_seeds[w].size()) {
      throw rl::WireError(
          "rollout wire: worker " + std::to_string(w) + " returned " +
          std::to_string(worker_results.size()) + " sequence(s), expected " +
          std::to_string(worker_seeds[w].size()) + " [" + out_path + "]");
    }
    // Inverse of the round-robin split: sequence i is the (i/W)-th
    // result of worker i%W.
    for (std::size_t k = 0; k < worker_results.size(); ++k) {
      results[k * n_workers + w] = std::move(worker_results[k]);
    }
  }
  return results;
}

}  // namespace rlbf::dist
