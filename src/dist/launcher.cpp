#include "dist/launcher.h"

#include <stdexcept>

namespace rlbf::dist {

LaunchResult Launcher::fetch(const JobSpec& job) {
  (void)job;
  LaunchResult result;
  result.process.exit_code = 0;
  result.command = "(no fetch needed)";
  return result;
}

LocalLauncher::LocalLauncher(double timeout_seconds)
    : timeout_seconds_(timeout_seconds) {}

LaunchResult LocalLauncher::launch(const JobSpec& job) {
  util::SubprocessOptions options;
  options.timeout_seconds = timeout_seconds_;
  LaunchResult result;
  result.command = job.command_line();
  result.process = util::run_subprocess(job.argv, options);
  return result;
}

std::string render_template(const std::string& tmpl,
                            const std::map<std::string, std::string>& vars) {
  std::string rendered;
  rendered.reserve(tmpl.size());
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    if (tmpl[i] != '{') {
      // "}}" collapses to '}' (the closing half of the "{{...}}" escape);
      // a lone '}' stays literal.
      if (tmpl[i] == '}' && i + 1 < tmpl.size() && tmpl[i + 1] == '}') ++i;
      rendered += tmpl[i];
      continue;
    }
    // "{{" is a literal '{', so templates can carry shell/awk brace
    // syntax ("cd ${{WORK}} && {command}").
    if (i + 1 < tmpl.size() && tmpl[i + 1] == '{') {
      rendered += '{';
      ++i;
      continue;
    }
    const std::size_t close = tmpl.find('}', i);
    if (close == std::string::npos) {
      throw std::invalid_argument("command template: unterminated '{' in \"" +
                                  tmpl + "\"");
    }
    const std::string name = tmpl.substr(i + 1, close - i - 1);
    const auto it = vars.find(name);
    if (it == vars.end()) {
      std::string known;
      for (const auto& [key, value] : vars) {
        known += (known.empty() ? "" : ", ") + ("{" + key + "}");
      }
      throw std::invalid_argument("command template: unknown placeholder '{" +
                                  name + "}' in \"" + tmpl + "\" (known: " +
                                  known + ")");
    }
    rendered += it->second;
    i = close;
  }
  return rendered;
}

std::vector<std::string> parse_hosts(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("--hosts: empty host list");
  }
  std::vector<std::string> hosts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string host = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (host.empty()) {
      throw std::invalid_argument("--hosts: empty host name in '" + text + "'");
    }
    hosts.push_back(host);
  }
  return hosts;
}

CommandLauncher::CommandLauncher(std::string command_template,
                                 std::vector<std::string> hosts,
                                 std::string fetch_template,
                                 double timeout_seconds)
    : command_template_(std::move(command_template)),
      hosts_(std::move(hosts)),
      fetch_template_(std::move(fetch_template)),
      timeout_seconds_(timeout_seconds) {
  if (hosts_.empty()) {
    throw std::invalid_argument("CommandLauncher: empty host list");
  }
  for (const std::string& host : hosts_) {
    if (host.empty()) {
      throw std::invalid_argument("CommandLauncher: empty host name");
    }
  }
  if (command_template_.find("{command}") == std::string::npos &&
      command_template_.find("{qcommand}") == std::string::npos) {
    throw std::invalid_argument(
        "CommandLauncher: command template \"" + command_template_ +
        "\" has no {command} (or {qcommand}) placeholder — the worker "
        "command would be lost");
  }
  // Fail on typo'd placeholders now, not at job 7 of a long run.
  const std::map<std::string, std::string> probe = {{"command", ""},
                                                    {"qcommand", ""},
                                                    {"host", ""},
                                                    {"job", ""},
                                                    {"id", ""},
                                                    {"out", ""}};
  render_template(command_template_, probe);
  if (!fetch_template_.empty()) {
    render_template(fetch_template_, {{"host", ""},
                                      {"remote", ""},
                                      {"local", ""},
                                      {"job", ""},
                                      {"id", ""}});
  }
}

const std::string& CommandLauncher::host_for(const JobSpec& job) const {
  // Attempt 1 is plain round-robin by id; each retry advances one host,
  // so a job never reruns on the host that just failed it (unless the
  // list has a single host, where there is nowhere else to go).
  return hosts_[(job.id + job.attempt - 1) % hosts_.size()];
}

LaunchResult CommandLauncher::launch(const JobSpec& job) {
  // {qcommand}: the whole worker line quoted ONCE MORE, for transports
  // that join their arguments and re-evaluate them in a remote shell
  // (ssh does) — with plain {command} the local sh strips the quoting
  // and a ';' inside a --sweep value would split the remote command.
  const std::string command = render_template(
      command_template_, {{"command", job.command_line()},
                          {"qcommand", util::shell_quote(job.command_line())},
                          {"host", host_for(job)},
                          {"job", job.name},
                          {"id", std::to_string(job.id)},
                          // Quoted: a path with a space must stay one word.
                          {"out", util::shell_quote(job.output_dir)}});
  util::SubprocessOptions options;
  options.timeout_seconds = timeout_seconds_;
  LaunchResult result;
  result.command = command;
  result.process = util::run_subprocess({"/bin/sh", "-c", command}, options);
  return result;
}

LaunchResult CommandLauncher::fetch(const JobSpec& job) {
  if (fetch_template_.empty()) return Launcher::fetch(job);
  const std::string command = render_template(
      fetch_template_, {{"host", host_for(job)},
                        // Quoted: paths must survive the shell as one word.
                        {"remote", util::shell_quote(job.output_dir)},
                        {"local", util::shell_quote(job.output_dir)},
                        {"job", job.name},
                        {"id", std::to_string(job.id)}});
  util::SubprocessOptions options;
  options.timeout_seconds = timeout_seconds_;
  LaunchResult result;
  result.command = command;
  result.process = util::run_subprocess({"/bin/sh", "-c", command}, options);
  return result;
}

}  // namespace rlbf::dist
