// Launchers: how a planned job becomes a running process.
//
// The orchestrator drives every transport through one blocking
// interface, so retries, failure logs, and collection never care where
// a job ran:
//
//   LocalLauncher    — fork/exec of the worker argv on this machine
//                      (util::run_subprocess); outputs land directly in
//                      the job's output_dir, fetch is a no-op.
//   CommandLauncher  — renders a user command template over a host
//                      list ("ssh {host} {command}", "sbatch ...",
//                      any batch submit wrapper) and runs it through
//                      /bin/sh, so real multi-host runs reuse the same
//                      driver; an optional fetch template ("scp -r
//                      {host}:{remote} {local}") copies outputs back.
//
// Malformed inputs — an empty or gappy --hosts list, a template without
// the {command} placeholder, an unknown {placeholder} — are named
// std::invalid_argument errors at construction, before anything runs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dist/job.h"
#include "util/subprocess.h"

namespace rlbf::dist {

struct LaunchResult {
  util::SubprocessResult process;
  /// The exact command that ran, for logs and failure reports.
  std::string command;
};

class Launcher {
 public:
  virtual ~Launcher() = default;

  /// Run the job to completion (blocking; the orchestrator provides
  /// concurrency by launching from several pool workers).
  virtual LaunchResult launch(const JobSpec& job) = 0;

  /// Bring the job's output_dir onto the local filesystem. The default
  /// is a successful no-op (outputs are already local or on a shared
  /// filesystem).
  virtual LaunchResult fetch(const JobSpec& job);
};

class LocalLauncher : public Launcher {
 public:
  /// `timeout_seconds` caps each attempt's wall clock (0 = no limit).
  explicit LocalLauncher(double timeout_seconds = 0.0);

  LaunchResult launch(const JobSpec& job) override;

 private:
  double timeout_seconds_;
};

/// Substitute "{name}" placeholders from `vars`; "{{" is a literal '{'
/// so templates can carry shell/awk brace syntax. Throws
/// std::invalid_argument naming any unknown or unterminated placeholder
/// (and listing the known names), so a typo'd template fails before any
/// job runs rather than shipping "{host}" to a shell.
std::string render_template(const std::string& tmpl,
                            const std::map<std::string, std::string>& vars);

/// Split a comma-separated --hosts list. Throws std::invalid_argument
/// on an empty list or an empty element ("a,,b").
std::vector<std::string> parse_hosts(const std::string& text);

class CommandLauncher : public Launcher {
 public:
  /// `command_template` placeholders: {command} (the shell-quoted worker
  /// command line) or {qcommand} (that line quoted once more, for
  /// transports like ssh that join their arguments and re-evaluate them
  /// in a remote shell — use `ssh {host} {qcommand}`); one of the two is
  /// required. Also {host} (the job's host, round-robin over `hosts`),
  /// {job} (the job name), {id}, {out} (the job's output directory,
  /// shell-quoted). `fetch_template` placeholders: {host}, {remote},
  /// {local} (both the output directory, shell-quoted), {job}, {id};
  /// empty = fetch is a no-op (shared filesystem). Both templates are
  /// validated at construction.
  CommandLauncher(std::string command_template, std::vector<std::string> hosts,
                  std::string fetch_template = "",
                  double timeout_seconds = 0.0);

  LaunchResult launch(const JobSpec& job) override;
  LaunchResult fetch(const JobSpec& job) override;

  /// Round-robin host assignment with retry rotation:
  /// (id + attempt - 1) % hosts — attempt 1 is plain round-robin by id,
  /// and every retry moves to the next host in the list, away from the
  /// one that just failed.
  const std::string& host_for(const JobSpec& job) const;

 private:
  std::string command_template_;
  std::vector<std::string> hosts_;
  std::string fetch_template_;
  double timeout_seconds_;
};

}  // namespace rlbf::dist
