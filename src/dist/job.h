// The distributed job model: what one worker invocation is.
//
// PR 4 made the primitives safe to drive blindly — shard outputs are a
// deterministic partition that merges byte-identically, store bundles
// are fingerprint-verified on import, and both are idempotent — so a
// job here is nothing more than a worker command line plus the output
// directory it promises to fill. The plan builders partition the two
// distributable workloads:
//
//   plan_sweep_jobs  — N jobs `rlbf_run sweep ... --shard=i/N
//                      --out_dir=<work>/shard<i>`; the collector merges
//                      the shard dirs (exp::merge_shard_dirs).
//   plan_train_jobs  — N jobs `rlbf_run train ... --shard=i/N
//                      --store=<work>/worker<i>/store
//                      --export_bundle=<work>/worker<i>/bundle`; the
//                      collector imports every bundle into one shared
//                      store (model::Store::import_bundle).
//
// Plans are pure functions of their options — no clocks, no host state —
// so the same invocation always produces the same jobs, and a retried
// job reruns exactly what failed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rlbf::dist {

struct JobSpec {
  /// Position in the plan; stable across retries (failure logs and the
  /// --inject_fail test hook address jobs by this id).
  std::size_t id = 0;
  /// 1-based attempt number, stamped by the orchestrator on each launch
  /// (planned jobs carry 1). Host-mapping launchers rotate on it, so a
  /// retry lands on a different host than the attempt that just failed.
  std::size_t attempt = 1;
  /// Human name for logs: "sweep-shard0/3", "train-shard1/3".
  std::string name;
  /// The worker command in local argv form; launchers for remote
  /// transports render it into their command template.
  std::vector<std::string> argv;
  /// The directory the job fills — a shard --out_dir or a bundle dir.
  /// Local path for LocalLauncher; for remote launchers also the remote
  /// path the fetch template copies back from.
  std::string output_dir;

  /// Observability sidecars the worker was told to write (empty when
  /// the plan didn't request them). They live at the work_dir root —
  /// NOT inside output_dir — so collectors that merge or import job
  /// outputs never see them; and being under work_dir, local/shared-fs
  /// launchers need no extra fetch step (remote transports that only
  /// copy output_dir back won't retrieve them).
  std::string metrics_path;
  std::string trace_path;
  std::string series_path;

  std::string command_line() const;  // shell-quoted rendering for logs
};

/// Common plan inputs: the worker binary (normally the running rlbf_run
/// itself), the pass-through flags of the underlying subcommand (without
/// any --shard/--out_dir/--store/--export_bundle — the planner owns
/// those), the partition width, and the scratch directory per-job
/// outputs live under.
struct PlanOptions {
  std::string worker;
  std::vector<std::string> args;
  std::size_t workers = 1;
  std::string work_dir;
  /// Ask each worker for per-process observability sidecars
  /// (<work_dir>/worker<i>.metrics.json / .trace.json /
  /// .series.jsonl): the planner appends the matching
  /// --metrics_out/--trace_out/--series_out flags and records the paths
  /// in JobSpec so the supervisor can merge them afterwards (obs::merge
  /// / obs::merge_series).
  bool worker_metrics = false;
  bool worker_trace = false;
  bool worker_series = false;
};

/// N shard-sweep jobs over the `run`/`sweep` flags in `options.args`.
/// Shard i writes shard-tagged summaries + per-job CSVs into
/// <work_dir>/shard<i>. Throws std::invalid_argument on an empty worker
/// or work_dir, or workers == 0.
std::vector<JobSpec> plan_sweep_jobs(const PlanOptions& options);

/// N training jobs over the `train` flags in `options.args`. Worker i
/// trains spec-grid shard i/N into its own store and exports the
/// results as <work_dir>/worker<i>/bundle. Same validation as
/// plan_sweep_jobs.
std::vector<JobSpec> plan_train_jobs(const PlanOptions& options);

}  // namespace rlbf::dist
