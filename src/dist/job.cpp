#include "dist/job.h"

#include <stdexcept>

#include "util/subprocess.h"

namespace rlbf::dist {

namespace {

void validate(const PlanOptions& options, const char* fn) {
  if (options.worker.empty()) {
    throw std::invalid_argument(std::string(fn) + ": empty worker binary path");
  }
  if (options.work_dir.empty()) {
    throw std::invalid_argument(std::string(fn) + ": empty work directory");
  }
  if (options.workers == 0) {
    throw std::invalid_argument(std::string(fn) +
                                ": worker count must be >= 1");
  }
}

std::string shard_flag(std::size_t i, std::size_t n) {
  return "--shard=" + std::to_string(i) + "/" + std::to_string(n);
}

/// Sidecar flags ride on every planned job the same way: files at the
/// work_dir root named by worker index, so they never land inside the
/// output_dir a collector merges.
void add_sidecars(JobSpec& job, const PlanOptions& options, std::size_t i) {
  const std::string stem =
      options.work_dir + "/worker" + std::to_string(i);
  if (options.worker_metrics) {
    job.metrics_path = stem + ".metrics.json";
    job.argv.push_back("--metrics_out=" + job.metrics_path);
  }
  if (options.worker_trace) {
    job.trace_path = stem + ".trace.json";
    job.argv.push_back("--trace_out=" + job.trace_path);
  }
  if (options.worker_series) {
    job.series_path = stem + ".series.jsonl";
    job.argv.push_back("--series_out=" + job.series_path);
  }
}

}  // namespace

std::string JobSpec::command_line() const {
  std::string line;
  for (const std::string& arg : argv) {
    if (!line.empty()) line += ' ';
    line += util::shell_quote(arg);
  }
  return line;
}

std::vector<JobSpec> plan_sweep_jobs(const PlanOptions& options) {
  validate(options, "plan_sweep_jobs");
  std::vector<JobSpec> jobs;
  jobs.reserve(options.workers);
  for (std::size_t i = 0; i < options.workers; ++i) {
    JobSpec job;
    job.id = i;
    job.name = "sweep-shard" + std::to_string(i) + "/" +
               std::to_string(options.workers);
    job.output_dir = options.work_dir + "/shard" + std::to_string(i);
    job.argv.push_back(options.worker);
    job.argv.push_back("sweep");
    job.argv.insert(job.argv.end(), options.args.begin(), options.args.end());
    job.argv.push_back(shard_flag(i, options.workers));
    job.argv.push_back("--out_dir=" + job.output_dir);
    add_sidecars(job, options, i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<JobSpec> plan_train_jobs(const PlanOptions& options) {
  validate(options, "plan_train_jobs");
  std::vector<JobSpec> jobs;
  jobs.reserve(options.workers);
  for (std::size_t i = 0; i < options.workers; ++i) {
    const std::string worker_dir =
        options.work_dir + "/worker" + std::to_string(i);
    JobSpec job;
    job.id = i;
    job.name = "train-shard" + std::to_string(i) + "/" +
               std::to_string(options.workers);
    job.output_dir = worker_dir + "/bundle";
    job.argv.push_back(options.worker);
    job.argv.push_back("train");
    job.argv.insert(job.argv.end(), options.args.begin(), options.args.end());
    job.argv.push_back(shard_flag(i, options.workers));
    job.argv.push_back("--store=" + worker_dir + "/store");
    job.argv.push_back("--export_bundle=" + job.output_dir);
    add_sidecars(job, options, i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace rlbf::dist
