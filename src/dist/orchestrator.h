// The supervisor/collector that closes the shard/train loop.
//
// run_jobs() drains a plan through a launcher with a per-job retry
// budget — safe because both distributable workloads are idempotent: a
// reran shard rewrites the same bytes, a reran training job re-exports
// the same content-addressed bundle. Failures are never silent: every
// exhausted job is reported with its name, exit status, and the tail of
// its captured stderr.
//
// The terminal collection step reuses the existing, tested primitives:
// collect_sweep() runs exp::merge_shard_dirs over the shard output
// directories (byte-identical to the unsharded run, validated shard
// set), collect_train_bundles() imports every worker bundle into one
// shared store (fingerprint-verified, idempotent re-imports skipped).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dist/launcher.h"
#include "exp/shard.h"
#include "model/store.h"
#include "obs/series.h"

namespace rlbf::dist {

struct OrchestratorOptions {
  /// Concurrent jobs in flight (0 = one worker per job).
  std::size_t max_parallel = 0;
  /// Total attempts per job (first run + retries). 0 is coerced to 1.
  std::size_t max_attempts = 2;
  /// Lines of captured stderr quoted in failure logs.
  std::size_t stderr_tail = 10;
  /// Test hook (--inject_fail): job id -> number of leading attempts
  /// forced to fail. An injected attempt launches the real worker with
  /// one extra unknown flag appended, so the failure is a genuine
  /// nonzero exit with a named error on stderr — the full retry path
  /// runs, not a simulation of it.
  std::map<std::size_t, std::size_t> inject_failures;
  /// Serialized progress lines ("[+0.012s] job sweep-shard0/3: attempt
  /// 1 ..."). Every line carries a monotonic timestamp relative to
  /// run_jobs entry, and attempt-completion lines carry the attempt's
  /// duration.
  std::function<void(const std::string&)> on_event;
  /// Interval for the periodic heartbeat summary ("k/N done, r running,
  /// f failed") emitted via util::log_info while jobs run, so long
  /// orchestrations are never silent. 0 disables it.
  double heartbeat_seconds = 30.0;
  /// Fired on every heartbeat tick, after the summary line — the hook
  /// the CLI uses to sample the metrics registry into a series file
  /// (obs::RegistrySampler::sample_once). Called from the heartbeat
  /// thread; must be thread-safe.
  std::function<void()> on_heartbeat;
  /// Time-series recorder for per-job duration analytics (borrowed;
  /// may be null). Each finished job records dist.job_seconds /
  /// dist.queue_wait_seconds keyed by job id, and every attempt records
  /// dist.attempt_seconds keyed by job id (one point per attempt), so
  /// straggler analysis can replay the run's timing shape per job — the
  /// registry histograms only keep the distribution.
  obs::SeriesRecorder* series = nullptr;
};

/// The flag an injected-failure attempt appends; unknown to every
/// rlbf_run subcommand by design (ArgParser exits 2 naming it).
inline constexpr const char* kInjectFailFlag = "--dist-injected-failure";

struct JobOutcome {
  JobSpec job;
  std::size_t attempts = 0;
  bool ok = false;
  /// Last attempt's status: "exit 2", "signal 9", "timeout", "spawn
  /// failed: ...", or "fetch failed: exit 1".
  std::string status;
  /// Tail of the last failed attempt's stderr ("" once the job passed).
  std::string stderr_tail;
  /// The rendered command of the last attempt, for reproduction.
  std::string command;
  /// Seconds between run_jobs entry and this job's first attempt (time
  /// spent queued behind max_parallel).
  double queue_wait_seconds = 0.0;
  /// Seconds from first attempt start to final outcome, all attempts
  /// and fetches included.
  double total_seconds = 0.0;
};

struct OrchestrationReport {
  std::vector<JobOutcome> jobs;  // plan order
  bool all_ok = false;
  std::size_t total_attempts = 0;

  /// One line per failed job: name, attempts, exit status, stderr tail.
  std::string failure_summary() const;
};

/// Run every job to success or retry exhaustion. Never throws on job
/// failure — the report carries the outcome — so partial progress is
/// always visible; throws std::invalid_argument only on an empty plan.
OrchestrationReport run_jobs(const std::vector<JobSpec>& jobs,
                             Launcher& launcher,
                             const OrchestratorOptions& options = {});

/// Merge the collected shard output dirs of a sweep plan into
/// `out_dir`'s canonical summary files. Throws std::runtime_error with
/// the report's failure summary when any job exhausted its retries
/// (collection over an incomplete shard set must never run), and
/// propagates exp::merge_shard_dirs errors.
exp::MergeReport collect_sweep(const OrchestrationReport& report,
                               const std::string& out_dir);

struct BundleImportTotals {
  std::size_t bundles = 0;
  std::size_t imported = 0;
  std::size_t skipped_existing = 0;
  /// (bundle dir, its import report) per worker, plan order.
  std::vector<std::pair<std::string, model::Store::ImportReport>> per_bundle;
};

/// Import every train job's bundle into `store`. Same
/// all-jobs-succeeded precondition as collect_sweep.
BundleImportTotals collect_train_bundles(const OrchestrationReport& report,
                                         model::Store& store);

}  // namespace rlbf::dist
