#include "dist/orchestrator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace rlbf::dist {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Render a duration the way event lines carry it: millisecond
/// precision, enough for queue diagnostics without flooding the log.
std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", s);
  return buf;
}

/// Indent a stderr tail so multi-line quotes read as one log block.
std::string indent_tail(const std::string& tail) {
  if (tail.empty()) return "  (stderr empty)";
  std::string block = "  | ";
  for (const char c : tail) {
    block += c;
    if (c == '\n') block += "  | ";
  }
  if (block.size() >= 4 && block.compare(block.size() - 4, 4, "  | ") == 0) {
    block.resize(block.size() - 4);
  }
  if (!block.empty() && block.back() == '\n') block.pop_back();
  return block;
}

}  // namespace

std::string OrchestrationReport::failure_summary() const {
  std::string summary;
  for (const JobOutcome& outcome : jobs) {
    if (outcome.ok) continue;
    summary += "job " + outcome.job.name + " failed after " +
               std::to_string(outcome.attempts) + " attempt(s): " +
               outcome.status + "\n" + indent_tail(outcome.stderr_tail) + "\n";
  }
  if (!summary.empty() && summary.back() == '\n') summary.pop_back();
  return summary;
}

OrchestrationReport run_jobs(const std::vector<JobSpec>& jobs,
                             Launcher& launcher,
                             const OrchestratorOptions& options) {
  if (jobs.empty()) {
    throw std::invalid_argument("run_jobs: empty job plan");
  }
  const std::size_t max_attempts = std::max<std::size_t>(options.max_attempts, 1);

  OrchestrationReport report;
  report.jobs.resize(jobs.size());

  const Clock::time_point t0 = Clock::now();
  std::mutex mu;  // serializes on_event and the attempt counter
  std::size_t total_attempts = 0;
  // Every serialized event line leads with a monotonic timestamp
  // relative to run_jobs entry, so replaying a log reconstructs the
  // schedule without a clock source.
  const auto event = [&](const std::string& line) {
    if (!options.on_event) return;
    std::lock_guard<std::mutex> lock(mu);
    options.on_event("[+" + fmt_seconds(seconds_since(t0)) + "] " + line);
  };
  // The [+N.NNNs] prefixes are steady-clock offsets, meaningless across
  // processes — each worker's own log starts at its own zero. Anchor
  // this run's zero on the wall clock ONCE, in the first line, so logs
  // from the supervisor and any worker can be laid on one timeline.
  {
    const std::int64_t wall_epoch_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    event("start: " + std::to_string(jobs.size()) + " job(s), wall_epoch_us=" +
          std::to_string(wall_epoch_us));
  }

  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> running{0};
  std::atomic<std::uint64_t> busy_us{0};  // summed per-job wall time
  std::atomic<std::uint64_t> retries{0};

  const std::size_t parallel =
      options.max_parallel == 0 ? jobs.size() : options.max_parallel;
  const std::size_t workers = std::min(parallel, jobs.size());

  // Heartbeat: a waiter thread summarizing progress every interval via
  // util::log_info (stderr), silenced by hb_cv at the end of the run.
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread heartbeat;
  if (options.heartbeat_seconds > 0.0) {
    heartbeat = std::thread([&] {
      std::unique_lock<std::mutex> lock(hb_mu);
      const auto interval =
          std::chrono::duration<double>(options.heartbeat_seconds);
      while (!hb_cv.wait_for(lock, interval, [&] { return hb_stop; })) {
        util::log_info("orchestrate: ", done.load(), "/", jobs.size(),
                       " done, ", running.load(), " running, ", failed.load(),
                       " failed");
        obs::trace_mark("heartbeat " + std::to_string(done.load()) + "/" +
                            std::to_string(jobs.size()) + " done",
                        "dist");
        if (options.on_heartbeat) options.on_heartbeat();
      }
    });
  }

  util::ThreadPool pool(workers);
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const JobSpec& job = jobs[i];
    JobOutcome& outcome = report.jobs[i];
    outcome.job = job;
    outcome.queue_wait_seconds = seconds_since(t0);
    const Clock::time_point job_start = Clock::now();
    running.fetch_add(1, std::memory_order_relaxed);
    obs::Span span = obs::Span::labeled("job " + job.name, "dist");

    std::size_t injected = 0;
    if (const auto it = options.inject_failures.find(job.id);
        it != options.inject_failures.end()) {
      injected = it->second;
    }

    const auto finish = [&](bool ok) {
      outcome.total_seconds = seconds_since(job_start);
      busy_us.fetch_add(
          static_cast<std::uint64_t>(outcome.total_seconds * 1e6),
          std::memory_order_relaxed);
      retries.fetch_add(outcome.attempts - 1, std::memory_order_relaxed);
      running.fetch_sub(1, std::memory_order_relaxed);
      (ok ? done : failed).fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) {
        obs::histogram("dist.queue_wait_seconds")
            .observe(outcome.queue_wait_seconds);
        obs::histogram("dist.job_seconds").observe(outcome.total_seconds);
      }
      if (options.series != nullptr) {
        const auto step = static_cast<std::int64_t>(job.id);
        options.series->record("dist.job_seconds", step,
                               outcome.total_seconds);
        options.series->record("dist.queue_wait_seconds", step,
                               outcome.queue_wait_seconds);
      }
    };

    for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
      outcome.attempts = attempt;
      {
        std::lock_guard<std::mutex> lock(mu);
        ++total_attempts;
      }
      // A failed attempt may have left partial output behind — worst, a
      // half-fetched directory that a rerun of `scp -r` would nest INTO
      // instead of replacing, letting truncated attempt-1 files survive
      // into the merge. Every attempt starts from a clean slate; the
      // plan owns these scratch paths, so removal is safe.
      if (attempt > 1) {
        std::error_code ec;
        std::filesystem::remove_all(job.output_dir, ec);
      }
      JobSpec launched = job;
      launched.attempt = attempt;
      const bool injecting = attempt <= injected;
      if (injecting) launched.argv.push_back(kInjectFailFlag);
      event("job " + job.name + ": attempt " + std::to_string(attempt) + "/" +
            std::to_string(max_attempts) +
            (injecting ? " (injected failure)" : "") + ": " +
            launched.command_line());

      const Clock::time_point attempt_start = Clock::now();
      LaunchResult run = launcher.launch(launched);
      const double run_seconds = seconds_since(attempt_start);
      if (obs::enabled()) {
        obs::histogram("dist.run_seconds").observe(run_seconds);
      }
      if (options.series != nullptr) {
        // One point per attempt at the same step (the job id): retried
        // jobs show every attempt's duration, plan order preserved.
        options.series->record("dist.attempt_seconds",
                               static_cast<std::int64_t>(job.id), run_seconds);
      }
      outcome.command = run.command;
      if (run.process.ok()) {
        const Clock::time_point fetch_start = Clock::now();
        // Fetch from the attempt that actually ran (host-rotating
        // launchers map a retry to a different host than attempt 1).
        LaunchResult fetched = launcher.fetch(launched);
        const double fetch_seconds = seconds_since(fetch_start);
        if (obs::enabled()) {
          obs::histogram("dist.fetch_seconds").observe(fetch_seconds);
        }
        if (fetched.process.ok()) {
          outcome.ok = true;
          outcome.status = run.process.status();
          outcome.stderr_tail.clear();
          event("job " + job.name + ": ok (" + outcome.status + ") in " +
                fmt_seconds(run_seconds) + " (fetch " +
                fmt_seconds(fetch_seconds) + ")");
          finish(true);
          return;
        }
        outcome.status = "fetch failed: " + fetched.process.status();
        outcome.stderr_tail =
            util::tail_lines(fetched.process.stderr_text, options.stderr_tail);
        outcome.command = fetched.command;
      } else {
        outcome.status = run.process.status();
        outcome.stderr_tail =
            util::tail_lines(run.process.stderr_text, options.stderr_tail);
      }
      event("job " + job.name + ": attempt " + std::to_string(attempt) +
            " failed (" + outcome.status + ") in " + fmt_seconds(run_seconds) +
            (attempt < max_attempts ? ", retrying" : ", retries exhausted"));
      if (attempt < max_attempts) {
        obs::trace_mark("retry " + job.name, "dist");
      }
    }
    finish(false);
  });

  if (heartbeat.joinable()) {
    {
      std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
  }

  if (obs::enabled()) {
    obs::counter("dist.jobs").add(jobs.size());
    obs::counter("dist.retries").add(retries.load(std::memory_order_relaxed));
    // Mean fraction of worker capacity spent inside jobs: summed per-job
    // wall time over (elapsed wall * workers).
    const double elapsed = seconds_since(t0);
    if (elapsed > 0.0 && workers > 0) {
      obs::gauge("dist.worker_utilization")
          .set(static_cast<double>(busy_us.load(std::memory_order_relaxed)) /
               1e6 / (elapsed * static_cast<double>(workers)));
    }
  }

  report.total_attempts = total_attempts;
  report.all_ok = true;
  for (const JobOutcome& outcome : report.jobs) {
    report.all_ok = report.all_ok && outcome.ok;
  }
  return report;
}

namespace {

void require_all_ok(const OrchestrationReport& report, const char* step) {
  if (report.all_ok) return;
  throw std::runtime_error(std::string(step) +
                           ": refusing to collect an incomplete run:\n" +
                           report.failure_summary());
}

}  // namespace

exp::MergeReport collect_sweep(const OrchestrationReport& report,
                               const std::string& out_dir) {
  require_all_ok(report, "collect_sweep");
  std::vector<std::string> shard_dirs;
  shard_dirs.reserve(report.jobs.size());
  for (const JobOutcome& outcome : report.jobs) {
    shard_dirs.push_back(outcome.job.output_dir);
  }
  return exp::merge_shard_dirs(shard_dirs, out_dir);
}

BundleImportTotals collect_train_bundles(const OrchestrationReport& report,
                                         model::Store& store) {
  require_all_ok(report, "collect_train_bundles");
  BundleImportTotals totals;
  for (const JobOutcome& outcome : report.jobs) {
    model::Store::ImportReport imported =
        store.import_bundle(outcome.job.output_dir);
    ++totals.bundles;
    totals.imported += imported.imported.size();
    totals.skipped_existing += imported.skipped_existing.size();
    totals.per_bundle.emplace_back(outcome.job.output_dir, std::move(imported));
  }
  return totals;
}

}  // namespace rlbf::dist
