#include "dist/orchestrator.h"

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <stdexcept>

#include "util/thread_pool.h"

namespace rlbf::dist {

namespace {

/// Indent a stderr tail so multi-line quotes read as one log block.
std::string indent_tail(const std::string& tail) {
  if (tail.empty()) return "  (stderr empty)";
  std::string block = "  | ";
  for (const char c : tail) {
    block += c;
    if (c == '\n') block += "  | ";
  }
  if (block.size() >= 4 && block.compare(block.size() - 4, 4, "  | ") == 0) {
    block.resize(block.size() - 4);
  }
  if (!block.empty() && block.back() == '\n') block.pop_back();
  return block;
}

}  // namespace

std::string OrchestrationReport::failure_summary() const {
  std::string summary;
  for (const JobOutcome& outcome : jobs) {
    if (outcome.ok) continue;
    summary += "job " + outcome.job.name + " failed after " +
               std::to_string(outcome.attempts) + " attempt(s): " +
               outcome.status + "\n" + indent_tail(outcome.stderr_tail) + "\n";
  }
  if (!summary.empty() && summary.back() == '\n') summary.pop_back();
  return summary;
}

OrchestrationReport run_jobs(const std::vector<JobSpec>& jobs,
                             Launcher& launcher,
                             const OrchestratorOptions& options) {
  if (jobs.empty()) {
    throw std::invalid_argument("run_jobs: empty job plan");
  }
  const std::size_t max_attempts = std::max<std::size_t>(options.max_attempts, 1);

  OrchestrationReport report;
  report.jobs.resize(jobs.size());

  std::mutex mu;  // serializes on_event and the attempt counter
  std::size_t total_attempts = 0;
  const auto event = [&](const std::string& line) {
    if (!options.on_event) return;
    std::lock_guard<std::mutex> lock(mu);
    options.on_event(line);
  };

  const std::size_t parallel =
      options.max_parallel == 0 ? jobs.size() : options.max_parallel;
  util::ThreadPool pool(std::min(parallel, jobs.size()));
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const JobSpec& job = jobs[i];
    JobOutcome& outcome = report.jobs[i];
    outcome.job = job;

    std::size_t injected = 0;
    if (const auto it = options.inject_failures.find(job.id);
        it != options.inject_failures.end()) {
      injected = it->second;
    }

    for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
      outcome.attempts = attempt;
      {
        std::lock_guard<std::mutex> lock(mu);
        ++total_attempts;
      }
      // A failed attempt may have left partial output behind — worst, a
      // half-fetched directory that a rerun of `scp -r` would nest INTO
      // instead of replacing, letting truncated attempt-1 files survive
      // into the merge. Every attempt starts from a clean slate; the
      // plan owns these scratch paths, so removal is safe.
      if (attempt > 1) {
        std::error_code ec;
        std::filesystem::remove_all(job.output_dir, ec);
      }
      JobSpec launched = job;
      const bool injecting = attempt <= injected;
      if (injecting) launched.argv.push_back(kInjectFailFlag);
      event("job " + job.name + ": attempt " + std::to_string(attempt) + "/" +
            std::to_string(max_attempts) +
            (injecting ? " (injected failure)" : "") + ": " +
            launched.command_line());

      LaunchResult run = launcher.launch(launched);
      outcome.command = run.command;
      if (run.process.ok()) {
        LaunchResult fetched = launcher.fetch(job);
        if (fetched.process.ok()) {
          outcome.ok = true;
          outcome.status = run.process.status();
          outcome.stderr_tail.clear();
          event("job " + job.name + ": ok (" + outcome.status + ")");
          return;
        }
        outcome.status = "fetch failed: " + fetched.process.status();
        outcome.stderr_tail =
            util::tail_lines(fetched.process.stderr_text, options.stderr_tail);
        outcome.command = fetched.command;
      } else {
        outcome.status = run.process.status();
        outcome.stderr_tail =
            util::tail_lines(run.process.stderr_text, options.stderr_tail);
      }
      event("job " + job.name + ": attempt " + std::to_string(attempt) +
            " failed (" + outcome.status + ")" +
            (attempt < max_attempts ? ", retrying" : ", retries exhausted"));
    }
  });

  report.total_attempts = total_attempts;
  report.all_ok = true;
  for (const JobOutcome& outcome : report.jobs) {
    report.all_ok = report.all_ok && outcome.ok;
  }
  return report;
}

namespace {

void require_all_ok(const OrchestrationReport& report, const char* step) {
  if (report.all_ok) return;
  throw std::runtime_error(std::string(step) +
                           ": refusing to collect an incomplete run:\n" +
                           report.failure_summary());
}

}  // namespace

exp::MergeReport collect_sweep(const OrchestrationReport& report,
                               const std::string& out_dir) {
  require_all_ok(report, "collect_sweep");
  std::vector<std::string> shard_dirs;
  shard_dirs.reserve(report.jobs.size());
  for (const JobOutcome& outcome : report.jobs) {
    shard_dirs.push_back(outcome.job.output_dir);
  }
  return exp::merge_shard_dirs(shard_dirs, out_dir);
}

BundleImportTotals collect_train_bundles(const OrchestrationReport& report,
                                         model::Store& store) {
  require_all_ok(report, "collect_train_bundles");
  BundleImportTotals totals;
  for (const JobOutcome& outcome : report.jobs) {
    model::Store::ImportReport imported =
        store.import_bundle(outcome.job.output_dir);
    ++totals.bundles;
    totals.imported += imported.imported.size();
    totals.skipped_existing += imported.skipped_existing.size();
    totals.per_bundle.emplace_back(outcome.job.output_dir, std::move(imported));
  }
  return totals;
}

}  // namespace rlbf::dist
