// Declarative training specifications for the model store.
//
// A TrainingSpec names everything one training run needs — the workload
// the trace is built from (via exp::build_trace), the RL algorithm (PPO,
// plus the DQN/REINFORCE ablation arms), and the full trainer protocol —
// and `fingerprint()` collapses it into a stable content address so the
// store can train once and reuse everywhere: equal fingerprints mean
// "this exact agent already exists", across processes and machines.
//
// Deliberately excluded from the fingerprint: the spec's name and
// description (presentation only) and every thread count (training is
// thread-count independent — gradient shards are fixed, collection and
// replication seeds are pre-split — so worker counts must not fork the
// cache).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "exp/scenario.h"
#include "rl/dqn.h"
#include "rl/reinforce.h"

namespace rlbf::model {

struct TrainingSpec {
  std::string name;         // registry key
  std::string description;  // one line for --list

  /// Trace construction. Only the workload-construction fields of the
  /// embedded scenario participate (exp::trace_cache_key); its scheduler
  /// and simulation fields are ignored — the trainer owns the scheduling
  /// side. The trace seed is trainer.seed.
  exp::ScenarioSpec workload;

  /// "ppo" (core::Trainer) | "dqn" | "reinforce" (core/alt_trainers.h).
  /// Non-PPO arms reuse the shared TrainerConfig fields below plus their
  /// algorithm's hyperparameter block (`dqn` / `reinforce`).
  std::string algorithm = "ppo";

  /// The full trainer protocol, agent architecture included.
  /// trainer.threads is a runtime knob, never part of the fingerprint.
  core::TrainerConfig trainer;

  /// Algorithm hyperparameters for the non-PPO arms. Fingerprinted only
  /// under their own algorithm (a PPO spec genuinely does not depend on
  /// them, so they must not fork its content address).
  rl::DqnConfig dqn;
  rl::ReinforceConfig reinforce;

  /// Warm start (the Table-5 fine-tuning setting): an agent reference —
  /// store key, registered spec name, or model file path — whose weights
  /// initialize training instead of a fresh agent. Fingerprinted when
  /// non-empty; prefer store keys, which are content addresses.
  std::string init_agent;
};

/// Canonical multi-line rendering of every fingerprinted field, in fixed
/// order with exact (%.17g) numeric formatting. This is what gets
/// hashed; the store keeps it alongside each model as a sidecar so a key
/// can always be audited.
std::string canonical_string(const TrainingSpec& spec);

/// Content address: 16 lowercase hex digits (FNV-1a 64 over
/// canonical_string). Stable across processes, platforms, and thread
/// counts.
std::string fingerprint(const TrainingSpec& spec);

/// FNV-1a 64 of arbitrary text as 16 lowercase hex digits (the hash
/// behind fingerprint(); exposed for trace content hashing).
std::string fnv1a_hex(const std::string& text);

/// Content hash over a trace's scheduling-relevant job fields. Lets the
/// store key training runs on explicit (possibly transformed) traces
/// that no workload-construction recipe describes.
std::string trace_fingerprint(const swf::Trace& trace);

/// Global name -> spec registry, pre-seeded with the built-in catalog
/// (paper-protocol specs per trace/base-policy plus the DQN/REINFORCE
/// ablation arms and a tiny CI smoke spec).
class TrainingRegistry {
 public:
  static TrainingRegistry& instance();

  /// Throws std::invalid_argument on empty or duplicate names.
  void add(TrainingSpec spec);

  bool contains(const std::string& name) const;

  /// Throws std::invalid_argument naming the unknown spec and listing
  /// what is available.
  const TrainingSpec& get(const std::string& name) const;

  /// Registration order.
  std::vector<std::string> names() const;

 private:
  // deque: references returned by get() stay valid across later add()s.
  std::deque<TrainingSpec> specs_;
};

/// Shorthands for TrainingRegistry::instance().
const TrainingSpec& find_training_spec(const std::string& name);
std::vector<std::string> training_spec_names();

/// The registered ablation arms ("abl-*": delay-penalty rules, observation
/// sizes, kernel-vs-flat networks, feature knockouts, reward objectives,
/// RL algorithms, transfer protocol), in registration order. Each arm
/// also has a same-named evaluation scenario in the exp catalog.
std::vector<std::string> ablation_arm_names();

}  // namespace rlbf::model
