#include "model/store.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/log.h"

namespace rlbf::model {

namespace fs = std::filesystem;

namespace {

constexpr const char* kIndexHeader = "rlbf-model-store v1";

std::string index_path(const std::string& root) { return root + "/index.tsv"; }

}  // namespace

Store::Store(std::string root) : root_(std::move(root)) {
  if (root_.empty()) throw std::runtime_error("model store: empty root");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    throw std::runtime_error("model store: cannot create '" + root_ +
                             "': " + ec.message());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  load_index_locked();
}

void Store::load_index_locked() {
  entries_.clear();
  std::ifstream in(index_path(root_));
  if (!in) {
    rebuild_from_scan_locked();
    return;
  }
  std::string line;
  std::getline(in, line);
  if (line != kIndexHeader) {
    util::log_warn("model store: unrecognized index header in ", root_,
                   "; rebuilding from scan");
    rebuild_from_scan_locked();
    return;
  }
  bool stale = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t tab1 = line.find('\t');
    const std::size_t tab2 = tab1 == std::string::npos
                                 ? std::string::npos
                                 : line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) {
      stale = true;
      continue;
    }
    StoreEntry entry;
    entry.key = line.substr(0, tab1);
    entry.name = line.substr(tab1 + 1, tab2 - tab1 - 1);
    entry.path = root_ + "/" + line.substr(tab2 + 1);
    if (!fs::exists(entry.path)) {
      stale = true;  // model removed behind the index's back
      continue;
    }
    try {
      entry.meta = core::Agent::load_meta(entry.path);
    } catch (const std::exception& e) {
      // One corrupt model (e.g. a crash mid-save) must not brick the
      // whole store: drop the entry, keep everything else usable.
      util::log_warn("model store: dropping unreadable ", entry.path, ": ",
                     e.what());
      stale = true;
      continue;
    }
    entries_.push_back(std::move(entry));
  }
  if (stale) save_index_locked();
}

void Store::rebuild_from_scan_locked() {
  // Self-describing fallback: every *.model carries its metadata, so the
  // index is derivable from the directory contents alone. Scan order is
  // sorted for determinism.
  std::vector<std::string> stems;
  for (const auto& dirent : fs::directory_iterator(root_)) {
    if (!dirent.is_regular_file()) continue;
    const fs::path& p = dirent.path();
    if (p.extension() == ".model") stems.push_back(p.stem().string());
  }
  std::sort(stems.begin(), stems.end());
  for (const std::string& stem : stems) {
    StoreEntry entry;
    entry.key = stem;
    entry.path = root_ + "/" + stem + ".model";
    try {
      entry.meta = core::Agent::load_meta(entry.path);
    } catch (const std::exception& e) {
      util::log_warn("model store: skipping unreadable ", entry.path, ": ",
                     e.what());
      continue;
    }
    const auto it = entry.meta.find("spec_name");
    if (it != entry.meta.end()) entry.name = it->second;
    entries_.push_back(std::move(entry));
  }
  if (!entries_.empty()) save_index_locked();
}

void Store::save_index_locked() const {
  // Write-then-rename so a crashed writer never leaves a torn index (a
  // missing one just triggers a rescan).
  const std::string tmp = index_path(root_) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("model store: cannot write " + tmp);
    out << kIndexHeader << '\n';
    for (const StoreEntry& entry : entries_) {
      out << entry.key << '\t' << entry.name << '\t'
          << fs::path(entry.path).filename().string() << '\n';
    }
    if (!out) throw std::runtime_error("model store: failed writing " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, index_path(root_), ec);
  if (ec) {
    throw std::runtime_error("model store: cannot update index in " + root_ +
                             ": " + ec.message());
  }
}

const StoreEntry* Store::find_locked(const std::string& key) const {
  for (const StoreEntry& entry : entries_) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

bool Store::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_locked(key) != nullptr;
}

std::optional<StoreEntry> Store::lookup(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const StoreEntry* entry = find_locked(key);
  if (entry == nullptr) return std::nullopt;
  return *entry;
}

core::Agent Store::load(const std::string& key) const {
  const auto entry = lookup(key);
  if (!entry) {
    throw std::runtime_error("model store: no entry for key '" + key +
                             "' under " + root_);
  }
  return core::Agent::load(entry->path);
}

StoreEntry Store::put(const std::string& key, const core::Agent& agent,
                      const std::string& name,
                      const std::map<std::string, std::string>& meta,
                      const std::string& canonical) {
  StoreEntry entry;
  entry.key = key;
  entry.name = name;
  entry.path = model_path(key);
  entry.meta = meta;
  entry.meta["fingerprint"] = key;
  if (!name.empty()) entry.meta["spec_name"] = name;
  // Write-then-rename, like the index: an interrupted save (e.g. a
  // killed --force retrain overwriting an existing key) must never leave
  // a torn .model behind a key the store reports as a valid cache hit.
  const std::string tmp = entry.path + ".tmp";
  if (!agent.save(tmp, entry.meta)) {
    throw std::runtime_error("model store: cannot write " + tmp);
  }
  std::error_code rename_ec;
  fs::rename(tmp, entry.path, rename_ec);
  if (rename_ec) {
    throw std::runtime_error("model store: cannot commit " + entry.path + ": " +
                             rename_ec.message());
  }
  if (!canonical.empty()) {
    std::ofstream spec(spec_path(key), std::ios::trunc);
    spec << canonical;
    if (!spec) {
      throw std::runtime_error("model store: cannot write " + spec_path(key));
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  bool replaced = false;
  for (StoreEntry& existing : entries_) {
    if (existing.key == key) {
      existing = entry;
      replaced = true;
      break;
    }
  }
  if (!replaced) entries_.push_back(entry);
  save_index_locked();
  return entry;
}

std::vector<StoreEntry> Store::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::vector<std::string> Store::prune(const std::vector<std::string>& referenced) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> removed;
  std::vector<StoreEntry> kept;
  for (StoreEntry& entry : entries_) {
    const bool keep = std::find(referenced.begin(), referenced.end(),
                                entry.key) != referenced.end();
    if (keep) {
      kept.push_back(std::move(entry));
      continue;
    }
    std::error_code ec;
    fs::remove(entry.path, ec);
    fs::remove(spec_path(entry.key), ec);
    fs::remove(checkpoint_path(entry.key), ec);
    removed.push_back(entry.key);
  }
  if (!removed.empty()) {
    entries_ = std::move(kept);
    save_index_locked();
  }
  return removed;
}

std::string Store::model_path(const std::string& key) const {
  return root_ + "/" + key + ".model";
}

std::string Store::spec_path(const std::string& key) const {
  return root_ + "/" + key + ".spec";
}

std::string Store::checkpoint_path(const std::string& key) const {
  return root_ + "/" + key + ".ckpt";
}

namespace {

std::mutex g_default_store_mutex;
std::unique_ptr<Store> g_default_store;
std::string g_default_store_root;

}  // namespace

std::string default_store_root() {
  std::lock_guard<std::mutex> lock(g_default_store_mutex);
  if (!g_default_store_root.empty()) return g_default_store_root;
  const char* env = std::getenv("RLBF_MODEL_STORE");
  return (env != nullptr && *env != '\0') ? env : "models";
}

Store& default_store() {
  const std::string root = default_store_root();
  std::lock_guard<std::mutex> lock(g_default_store_mutex);
  if (g_default_store == nullptr || g_default_store->root() != root) {
    g_default_store = std::make_unique<Store>(root);
  }
  return *g_default_store;
}

void set_default_store_root(const std::string& root) {
  std::lock_guard<std::mutex> lock(g_default_store_mutex);
  g_default_store_root = root;
  g_default_store.reset();
}

}  // namespace rlbf::model
