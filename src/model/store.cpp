#include "model/store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "exp/config.h"
#include "model/training_spec.h"
#include "util/log.h"

namespace rlbf::model {

namespace fs = std::filesystem;

namespace {

// v2 appended the last-used column; v1 indexes are migrated on open
// (missing column = never used). Anything newer/unknown falls back to
// the self-describing *.model scan.
constexpr const char* kIndexHeaderV1 = "rlbf-model-store v1";
constexpr const char* kIndexHeaderV2 = "rlbf-model-store v2";
constexpr const char* kBundleHeader = "rlbf-model-bundle v1";

std::string index_path(const std::string& root) { return root + "/index.tsv"; }

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    fields.push_back(line.substr(start, tab - start));
    if (tab == std::string::npos) break;
    start = tab + 1;
  }
  return fields;
}

// Keys are fingerprint()/fnv1a_hex() content addresses: exactly 16
// lowercase hex digits. Bundle manifests are foreign input, so their
// keys must be validated before ever being spliced into a filesystem
// path — a key like "../../target" would otherwise write outside the
// store root.
bool is_valid_key(const std::string& key) {
  if (key.size() != 16) return false;
  for (const char c : key) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

bool is_bare_filename(const std::string& name) {
  return !name.empty() && name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos && name != "." && name != "..";
}

// Cross-process writer lock for index.tsv (flock on <root>/index.lock).
// Every index update is a read-merge-write (save_index_locked folds the
// on-disk rows into this handle's view), so two processes sharing a
// store must serialize around it or a put() landing inside the window
// gets dropped. Best-effort: if the lock file cannot be opened
// (read-only store, flock-less filesystem), writers fall back to plain
// last-writer-wins on an always-intact (atomic-rename) index.
class IndexLock {
 public:
  explicit IndexLock(const std::string& root)
      : fd_(::open((root + "/index.lock").c_str(), O_CREAT | O_RDWR, 0644)) {
    if (fd_ >= 0) ::flock(fd_, LOCK_EX);
  }
  ~IndexLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  IndexLock(const IndexLock&) = delete;
  IndexLock& operator=(const IndexLock&) = delete;

 private:
  int fd_;
};

// Write-then-rename with a per-process tmp name: a killed writer never
// leaves a torn file behind a path other code trusts, and two processes
// sharing a store never interleave into one tmp. Used for the index and
// the .spec sidecars (the .model goes through Agent::save first and
// shares only the rename step).
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + "." + std::to_string(::getpid()) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("model store: cannot write " + tmp);
    out << content;
    if (!out) throw std::runtime_error("model store: failed writing " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("model store: cannot commit " + path + ": " +
                             ec.message());
  }
}

}  // namespace

Store::Store(std::string root) : root_(std::move(root)) {
  if (root_.empty()) throw std::runtime_error("model store: empty root");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    throw std::runtime_error("model store: cannot create '" + root_ +
                             "': " + ec.message());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Per-process tmp files orphaned by a crashed writer would otherwise
  // accumulate forever (each pid gets its own name). An age threshold
  // keeps this from racing a live writer's in-flight tmp, whose
  // lifetime is milliseconds.
  for (const auto& dirent : fs::directory_iterator(root_, ec)) {
    if (ec) break;
    if (!dirent.is_regular_file() || dirent.path().extension() != ".tmp") {
      continue;
    }
    std::error_code time_ec;
    const auto mtime = fs::last_write_time(dirent.path(), time_ec);
    if (time_ec) continue;
    const auto age = decltype(mtime)::clock::now() - mtime;
    if (age > std::chrono::hours(1)) {
      std::error_code remove_ec;
      fs::remove(dirent.path(), remove_ec);
    }
  }
  load_index_locked();
}

void Store::load_index_locked() {
  entries_.clear();
  unreadable_keys_.clear();
  use_clock_ = 0;
  std::ifstream in(index_path(root_));
  if (!in) {
    rebuild_from_scan_locked();
    return;
  }
  std::string line;
  std::getline(in, line);
  const bool v1 = line == kIndexHeaderV1;
  if (!v1 && line != kIndexHeaderV2) {
    util::log_warn("model store: unrecognized index header in ", root_,
                   "; rebuilding from scan");
    rebuild_from_scan_locked();
    return;
  }
  // A v1 index is valid input but gets rewritten in the v2 format
  // (last-used column added, 0 = never used) once loaded.
  bool stale = v1;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_tabs(line);
    if (fields.size() < 3) {
      stale = true;
      continue;
    }
    StoreEntry entry;
    entry.key = fields[0];
    entry.name = fields[1];
    entry.path = root_ + "/" + fields[2];
    if (fields.size() >= 4 && !exp::parse_number(fields[3], &entry.last_used)) {
      stale = true;  // rewrite the malformed clock as 0, keep the entry
    }
    if (!fs::exists(entry.path)) {
      stale = true;  // model removed behind the index's back
      continue;
    }
    try {
      entry.meta = core::Agent::load_meta(entry.path);
    } catch (const std::exception& e) {
      // One corrupt model (e.g. a crash mid-save) must not brick the
      // whole store: drop the entry, keep everything else usable. The
      // key is remembered so the merged index save drops it too.
      util::log_warn("model store: dropping unreadable ", entry.path, ": ",
                     e.what());
      unreadable_keys_.push_back(entry.key);
      stale = true;
      continue;
    }
    use_clock_ = std::max(use_clock_, entry.last_used);
    entries_.push_back(std::move(entry));
  }
  if (stale) save_index_locked();
}

void Store::rebuild_from_scan_locked() {
  // Self-describing fallback: every *.model carries its metadata, so the
  // index is derivable from the directory contents alone. Scan order is
  // sorted for determinism.
  std::vector<std::string> stems;
  for (const auto& dirent : fs::directory_iterator(root_)) {
    if (!dirent.is_regular_file()) continue;
    const fs::path& p = dirent.path();
    if (p.extension() == ".model") stems.push_back(p.stem().string());
  }
  std::sort(stems.begin(), stems.end());
  for (const std::string& stem : stems) {
    StoreEntry entry;
    entry.key = stem;
    entry.path = root_ + "/" + stem + ".model";
    try {
      entry.meta = core::Agent::load_meta(entry.path);
    } catch (const std::exception& e) {
      util::log_warn("model store: skipping unreadable ", entry.path, ": ",
                     e.what());
      continue;
    }
    const auto it = entry.meta.find("spec_name");
    if (it != entry.meta.end()) entry.name = it->second;
    entries_.push_back(std::move(entry));
  }
  if (!entries_.empty()) save_index_locked();
}

void Store::save_index_locked() const {
  // Every index write is a read-merge-write under the cross-process
  // flock: this handle's snapshot may be stale — another process
  // sharing the store can have put() entries since we loaded — and
  // blindly overwriting would erase them. Merge rules: the union of
  // disk rows and our entries, our values winning for keys we hold
  // (clocks take the max), and existence of the .model file deciding
  // membership — prune/evict delete files before saving, so removals
  // propagate to every writer without tombstones. Entries this handle
  // dropped as unreadable stay dropped.
  const IndexLock flock_guard(root_);
  struct Row {
    std::string key, name, file;
    std::uint64_t clock = 0;
  };
  std::vector<Row> rows;
  std::map<std::string, std::size_t> position;
  {
    std::ifstream in(index_path(root_));
    std::string line;
    if (in && std::getline(in, line) &&
        (line == kIndexHeaderV1 || line == kIndexHeaderV2)) {
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        const std::vector<std::string> fields = split_tabs(line);
        if (fields.size() < 3 || position.count(fields[0]) != 0) continue;
        Row row;
        row.key = fields[0];
        row.name = fields[1];
        row.file = fields[2];
        if (fields.size() >= 4) exp::parse_number(fields[3], &row.clock);
        position[row.key] = rows.size();
        rows.push_back(std::move(row));
      }
    }
  }
  for (const StoreEntry& entry : entries_) {
    const std::string file = fs::path(entry.path).filename().string();
    const auto it = position.find(entry.key);
    if (it != position.end()) {
      Row& row = rows[it->second];
      row.name = entry.name;
      row.file = file;
      row.clock = std::max(row.clock, entry.last_used);
    } else {
      position[entry.key] = rows.size();
      rows.push_back({entry.key, entry.name, file, entry.last_used});
    }
  }
  std::string content = std::string(kIndexHeaderV2) + "\n";
  for (const Row& row : rows) {
    if (!fs::exists(root_ + "/" + row.file)) continue;
    if (std::find(unreadable_keys_.begin(), unreadable_keys_.end(), row.key) !=
        unreadable_keys_.end()) {
      continue;
    }
    content += row.key + "\t" + row.name + "\t" + row.file + "\t" +
               std::to_string(row.clock) + "\n";
  }
  write_file_atomic(index_path(root_), content);
  dirty_ = false;
}

Store::~Store() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!dirty_) return;
  try {
    save_index_locked();  // merged write: raises our clocks, keeps others
  } catch (const std::exception& e) {
    // LRU bookkeeping must never fail (or throw from) a teardown: the
    // clock's persistence is best-effort by design.
    util::log_warn("model store: cannot persist last-used clock: ", e.what());
  }
}

const StoreEntry* Store::find_locked(const std::string& key) const {
  for (const StoreEntry& entry : entries_) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

void Store::touch_locked(StoreEntry& entry) const {
  // Only mark dirty: rewriting index.tsv on every lookup would turn
  // each read into an O(entries) file write (and fail outright on
  // read-only shared stores). The clock is persisted by the next real
  // index write or the destructor.
  entry.last_used = ++use_clock_;
  dirty_ = true;
}

bool Store::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_locked(key) != nullptr;
}

std::optional<StoreEntry> Store::lookup(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // entries_ is mutable: a const lookup still advances the LRU clock.
  StoreEntry* entry = const_cast<StoreEntry*>(find_locked(key));
  if (entry == nullptr) return std::nullopt;
  touch_locked(*entry);
  return *entry;
}

core::Agent Store::load(const std::string& key) const {
  const auto entry = lookup(key);
  if (!entry) {
    throw std::runtime_error("model store: no entry for key '" + key +
                             "' under " + root_);
  }
  return core::Agent::load(entry->path);
}

StoreEntry Store::put(const std::string& key, const core::Agent& agent,
                      const std::string& name,
                      const std::map<std::string, std::string>& meta,
                      const std::string& canonical) {
  StoreEntry entry;
  entry.key = key;
  entry.name = name;
  entry.path = model_path(key);
  entry.meta = meta;
  entry.meta["fingerprint"] = key;
  if (!name.empty()) entry.meta["spec_name"] = name;
  // Write-then-rename, like the index: an interrupted save (e.g. a
  // killed --force retrain overwriting an existing key) must never leave
  // a torn .model behind a key the store reports as a valid cache hit.
  // Per-process tmp name: two writers racing on one shared store must
  // never interleave into the same tmp file.
  const std::string tmp =
      entry.path + "." + std::to_string(::getpid()) + ".tmp";
  if (!agent.save(tmp, entry.meta)) {
    throw std::runtime_error("model store: cannot write " + tmp);
  }
  std::error_code rename_ec;
  fs::rename(tmp, entry.path, rename_ec);
  if (rename_ec) {
    throw std::runtime_error("model store: cannot commit " + entry.path + ": " +
                             rename_ec.message());
  }
  // Atomic like the .model: a torn sidecar would fail bundle import's
  // fnv1a re-verification on every machine the entry ships to.
  if (!canonical.empty()) write_file_atomic(spec_path(key), canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  // A fresh valid .model supersedes any unreadable predecessor this
  // handle blacklisted at load — the merged index save must list it.
  unreadable_keys_.erase(
      std::remove(unreadable_keys_.begin(), unreadable_keys_.end(), key),
      unreadable_keys_.end());
  entry.last_used = ++use_clock_;  // freshly trained = most recently used
  bool replaced = false;
  for (StoreEntry& existing : entries_) {
    if (existing.key == key) {
      existing = entry;
      replaced = true;
      break;
    }
  }
  if (!replaced) entries_.push_back(entry);
  save_index_locked();
  return entry;
}

std::vector<StoreEntry> Store::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::optional<std::uint64_t> Store::remove_entry_files_locked(
    const StoreEntry& entry) {
  const auto size_of = [](const std::string& path) -> std::uint64_t {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    return ec ? 0 : size;
  };
  // The .model decides the entry's fate: if its removal fails, the entry
  // must stay in the index — dropping it would leave an orphan .model
  // that a later scan rebuild resurrects with stale meta. (fs::remove of
  // an already-absent file is a clean false-with-no-error: gone is gone.)
  std::uint64_t freed = size_of(entry.path);
  std::error_code model_ec;
  fs::remove(entry.path, model_ec);
  if (model_ec) {
    util::log_warn("model store: cannot remove ", entry.path, ": ",
                   model_ec.message(), "; keeping entry ", entry.key);
    return std::nullopt;
  }
  // Sidecars never resurrect an entry, so their failures only warn —
  // but a surviving sidecar's bytes are not freed, and evict_lru's
  // accounting must know that.
  for (const std::string& sidecar :
       {spec_path(entry.key), checkpoint_path(entry.key)}) {
    const std::uint64_t bytes = size_of(sidecar);
    std::error_code ec;
    fs::remove(sidecar, ec);
    if (ec) {
      util::log_warn("model store: cannot remove ", sidecar, ": ",
                     ec.message());
    } else {
      freed += bytes;
    }
  }
  return freed;
}

std::uint64_t Store::entry_bytes_locked(const StoreEntry& entry) const {
  std::uint64_t total = 0;
  for (const std::string& path :
       {entry.path, spec_path(entry.key), checkpoint_path(entry.key)}) {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    if (!ec) total += size;
  }
  return total;
}

std::vector<std::string> Store::prune(const std::vector<std::string>& referenced) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> removed;
  std::vector<StoreEntry> kept;
  for (StoreEntry& entry : entries_) {
    const bool keep = std::find(referenced.begin(), referenced.end(),
                                entry.key) != referenced.end();
    if (!keep && remove_entry_files_locked(entry)) {
      removed.push_back(entry.key);
      continue;
    }
    kept.push_back(std::move(entry));
  }
  if (!removed.empty()) {
    entries_ = std::move(kept);
    save_index_locked();
  }
  return removed;
}

Store::EvictionResult Store::evict_lru(
    std::uint64_t max_bytes, const std::vector<std::string>& referenced) {
  std::lock_guard<std::mutex> lock(mutex_);
  EvictionResult result;
  std::vector<std::uint64_t> sizes(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    sizes[i] = entry_bytes_locked(entries_[i]);
    result.bytes_before += sizes[i];
  }
  std::uint64_t on_disk = result.bytes_before;
  std::vector<bool> dead(entries_.size(), false);
  std::vector<bool> unremovable(entries_.size(), false);
  while (on_disk > max_bytes) {
    // Least-recently-used evictable entry; index order breaks clock ties
    // so concurrent hosts evict identically from identical stores.
    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (dead[i] || unremovable[i]) continue;
      if (std::find(referenced.begin(), referenced.end(), entries_[i].key) !=
          referenced.end()) {
        continue;
      }
      if (victim == entries_.size() ||
          entries_[i].last_used < entries_[victim].last_used) {
        victim = i;
      }
    }
    if (victim == entries_.size()) {
      const bool removal_failed =
          std::find(unremovable.begin(), unremovable.end(), true) !=
          unremovable.end();
      util::log_warn("model store: ", root_, " still holds ",
                     std::to_string(on_disk), " bytes (cap ",
                     std::to_string(max_bytes), "); every remaining entry is ",
                     removal_failed
                         ? "referenced or failed removal (see warnings above)"
                         : "referenced");
      break;
    }
    if (const auto freed = remove_entry_files_locked(entries_[victim])) {
      dead[victim] = true;
      // Subtract what was actually deleted — a sidecar whose removal
      // failed still occupies disk and must keep counting against the cap.
      on_disk -= std::min(on_disk, *freed);
      result.removed.push_back(entries_[victim].key);
    } else {
      unremovable[victim] = true;
    }
  }
  if (!result.removed.empty()) {
    std::vector<StoreEntry> kept;
    kept.reserve(entries_.size() - result.removed.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!dead[i]) kept.push_back(std::move(entries_[i]));
    }
    entries_ = std::move(kept);
    save_index_locked();
  }
  result.bytes_after = on_disk;
  return result;
}

std::vector<std::string> Store::export_bundle(
    const std::string& dir, const std::vector<std::string>& keys) const {
  return export_bundle_impl(dir, keys, /*all_when_empty=*/true);
}

std::vector<std::string> Store::export_bundle_exact(
    const std::string& dir, const std::vector<std::string>& keys) const {
  return export_bundle_impl(dir, keys, /*all_when_empty=*/false);
}

std::vector<std::string> Store::export_bundle_impl(
    const std::string& dir, const std::vector<std::string>& keys,
    bool all_when_empty) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const StoreEntry*> chosen;
  if (keys.empty()) {
    if (all_when_empty) {
      for (const StoreEntry& entry : entries_) chosen.push_back(&entry);
    }
  } else {
    for (const std::string& key : keys) {
      const StoreEntry* entry = find_locked(key);
      if (entry == nullptr) {
        throw std::runtime_error("model store: cannot export unknown key '" +
                                 key + "' from " + root_);
      }
      chosen.push_back(entry);
    }
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("model store: cannot create bundle directory '" +
                             dir + "': " + ec.message());
  }
  std::string manifest = std::string(kBundleHeader) + "\n";
  std::vector<std::string> exported;
  for (const StoreEntry* entry : chosen) {
    const std::string model_file = entry->key + ".model";
    fs::copy_file(entry->path, dir + "/" + model_file,
                  fs::copy_options::overwrite_existing, ec);
    if (ec) {
      throw std::runtime_error("model store: cannot copy " + entry->path +
                               " into bundle: " + ec.message());
    }
    std::string spec_file;
    if (fs::exists(spec_path(entry->key))) {
      spec_file = entry->key + ".spec";
      fs::copy_file(spec_path(entry->key), dir + "/" + spec_file,
                    fs::copy_options::overwrite_existing, ec);
      if (ec) {
        throw std::runtime_error("model store: cannot copy " +
                                 spec_path(entry->key) +
                                 " into bundle: " + ec.message());
      }
    }
    manifest += entry->key + "\t" + entry->name + "\t" + model_file + "\t" +
                spec_file + "\n";
    exported.push_back(entry->key);
  }
  std::ofstream out(dir + "/bundle.tsv", std::ios::trunc);
  out << manifest;
  if (!out) {
    throw std::runtime_error("model store: cannot write bundle manifest in " +
                             dir);
  }
  return exported;
}

Store::ImportReport Store::import_bundle(const std::string& dir) {
  std::ifstream in(dir + "/bundle.tsv");
  if (!in) {
    throw std::runtime_error("model store: no bundle manifest (bundle.tsv) in '" +
                             dir + "'");
  }
  std::string line;
  std::getline(in, line);
  if (line != kBundleHeader) {
    throw std::runtime_error("model store: unrecognized bundle manifest header "
                             "in '" + dir + "': '" + line + "'");
  }
  ImportReport report;
  // The index is saved once per import batch (not per entry — that
  // would make a large import O(n^2) in index I/O); a failing entry
  // still persists everything verified before it, per the contract.
  const auto persist_imports = [&](bool rethrowing) {
    if (report.imported.empty()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!rethrowing) {
      save_index_locked();
      return;
    }
    try {
      save_index_locked();
    } catch (const std::exception& e) {
      util::log_warn("model store: cannot save index after partial import: ",
                     e.what());
    }
  };
  try {
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const std::vector<std::string> fields = split_tabs(line);
      if (fields.size() < 4) {
        throw std::runtime_error("model store: malformed bundle manifest row '" +
                                 line + "' in " + dir);
      }
      const std::string& key = fields[0];
      const std::string& name = fields[1];
      // The manifest is foreign input: reject anything that is not a bare
      // content-address key + bare filenames BEFORE building paths from it.
      if (!is_valid_key(key)) {
        throw std::runtime_error("model store: invalid bundle key '" + key +
                                 "' in " + dir +
                                 " (want 16 lowercase hex digits); not imported");
      }
      if (!is_bare_filename(fields[2]) ||
          (!fields[3].empty() && !is_bare_filename(fields[3]))) {
        throw std::runtime_error("model store: invalid file reference in bundle "
                                 "manifest row '" + line + "'; not imported");
      }
      const std::string model_src = dir + "/" + fields[2];
      const std::string spec_src = fields[3].empty() ? "" : dir + "/" + fields[3];

      // Re-verify before adopting anything: the embedded fingerprint must
      // equal the manifest key, the model must load in full (truncated
      // weight sections throw), and a spec sidecar must hash back to the
      // key — the same audit chain fingerprint() established at training
      // time. A failed check rejects the entry with a named error. The
      // cheap header-only meta check runs first so a mismatched bundle
      // fails before the full weight parse.
      std::map<std::string, std::string> meta;
      try {
        meta = core::Agent::load_meta(model_src);
      } catch (const std::exception& e) {
        throw std::runtime_error("model store: bundle entry '" + key +
                                 "' is corrupt (" + e.what() + "); not imported");
      }
      const auto fp = meta.find("fingerprint");
      if (fp == meta.end() || fp->second != key) {
        throw std::runtime_error(
            "model store: bundle fingerprint mismatch for '" + fields[2] +
            "': manifest says " + key + ", model says " +
            (fp == meta.end() ? std::string("<none>") : fp->second) +
            "; not imported");
      }
      try {
        (void)core::Agent::load(model_src);
      } catch (const std::exception& e) {
        throw std::runtime_error("model store: bundle entry '" + key +
                                 "' is corrupt (" + e.what() + "); not imported");
      }
      std::string canonical;
      if (!spec_src.empty()) {
        std::ifstream spec(spec_src, std::ios::binary);
        if (!spec) {
          throw std::runtime_error("model store: bundle spec sidecar " + spec_src +
                                   " is unreadable; not imported");
        }
        canonical.assign(std::istreambuf_iterator<char>(spec),
                         std::istreambuf_iterator<char>());
        if (fnv1a_hex(canonical) != key) {
          throw std::runtime_error(
              "model store: bundle spec sidecar for '" + key +
              "' does not hash back to its key (got " + fnv1a_hex(canonical) +
              "); not imported");
        }
      }

      std::lock_guard<std::mutex> lock(mutex_);
      if (find_locked(key) != nullptr) {
        // Equal content addresses mean equal content; nothing to adopt.
        report.skipped_existing.push_back(key);
        continue;
      }
      StoreEntry entry;
      entry.key = key;
      entry.name = name;
      entry.path = model_path(key);
      entry.meta = meta;
      // Copy-then-rename with a per-process tmp name, like put(): a crash
      // mid-import must never leave a torn .model behind a key the index
      // vouches for, and concurrent importers must not share a tmp file.
      const std::string tmp =
          entry.path + "." + std::to_string(::getpid()) + ".tmp";
      std::error_code ec;
      fs::copy_file(model_src, tmp, fs::copy_options::overwrite_existing, ec);
      if (!ec) fs::rename(tmp, entry.path, ec);
      if (ec) {
        throw std::runtime_error("model store: cannot import " + model_src +
                                 ": " + ec.message());
      }
      if (!canonical.empty()) write_file_atomic(spec_path(key), canonical);
      // The verified import supersedes any unreadable predecessor this
      // handle blacklisted at load.
      unreadable_keys_.erase(
          std::remove(unreadable_keys_.begin(), unreadable_keys_.end(), key),
          unreadable_keys_.end());
      entry.last_used = ++use_clock_;
      entries_.push_back(std::move(entry));
      report.imported.push_back(key);
    }
  } catch (...) {
    persist_imports(/*rethrowing=*/true);
    throw;
  }
  persist_imports(/*rethrowing=*/false);
  return report;
}

std::string Store::model_path(const std::string& key) const {
  return root_ + "/" + key + ".model";
}

std::string Store::spec_path(const std::string& key) const {
  return root_ + "/" + key + ".spec";
}

std::string Store::checkpoint_path(const std::string& key) const {
  return root_ + "/" + key + ".ckpt";
}

std::vector<std::string> find_bundle_dirs(const std::string& path) {
  std::error_code ec;
  if (!fs::is_directory(path, ec)) {
    throw std::runtime_error("model store: bundle path '" + path +
                             "' is not a directory");
  }
  if (fs::exists(path + "/bundle.tsv", ec)) return {path};
  // Two collection layouts: a flat directory of bundles, and the
  // orchestrator's work dir (<work>/worker<i>/bundle — one level
  // deeper), so `models --import_bundle=<kept work dir>` just works.
  std::vector<std::string> bundles;
  for (const fs::directory_entry& entry : fs::directory_iterator(path, ec)) {
    if (!entry.is_directory(ec)) continue;
    if (fs::exists(entry.path() / "bundle.tsv", ec)) {
      bundles.push_back(entry.path().string());
      continue;
    }
    for (const fs::directory_entry& nested :
         fs::directory_iterator(entry.path(), ec)) {
      if (!nested.is_directory(ec)) continue;
      if (fs::exists(nested.path() / "bundle.tsv", ec)) {
        bundles.push_back(nested.path().string());
      }
    }
  }
  if (bundles.empty()) {
    throw std::runtime_error(
        "model store: '" + path +
        "' holds no bundle (no bundle.tsv in it or any subdirectory)");
  }
  std::sort(bundles.begin(), bundles.end());
  return bundles;
}

namespace {

std::mutex g_default_store_mutex;
std::unique_ptr<Store> g_default_store;
std::string g_default_store_root;

}  // namespace

std::string default_store_root() {
  std::lock_guard<std::mutex> lock(g_default_store_mutex);
  if (!g_default_store_root.empty()) return g_default_store_root;
  const char* env = std::getenv("RLBF_MODEL_STORE");
  return (env != nullptr && *env != '\0') ? env : "models";
}

Store& default_store() {
  const std::string root = default_store_root();
  std::lock_guard<std::mutex> lock(g_default_store_mutex);
  if (g_default_store == nullptr || g_default_store->root() != root) {
    g_default_store = std::make_unique<Store>(root);
  }
  return *g_default_store;
}

void set_default_store_root(const std::string& root) {
  std::lock_guard<std::mutex> lock(g_default_store_mutex);
  g_default_store_root = root;
  g_default_store.reset();
}

}  // namespace rlbf::model
