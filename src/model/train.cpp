#include "model/train.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "core/alt_trainers.h"
#include "dist/rollout.h"
#include "exp/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/rng.h"

namespace rlbf::model {

namespace {

TrainProgress from_stats(const core::EpochStats& s) {
  TrainProgress p;
  p.epoch = s.epoch;
  p.mean_reward = s.mean_reward;
  p.mean_bsld = s.mean_bsld;
  p.mean_baseline_bsld = s.mean_baseline_bsld;
  p.steps = s.steps;
  p.eval_bsld = s.eval_bsld;
  p.wall_seconds = s.wall_seconds;
  return p;
}

TrainProgress from_stats(const core::AltEpochStats& s) {
  TrainProgress p;
  p.epoch = s.epoch;
  p.mean_reward = s.mean_reward;
  p.mean_bsld = s.mean_bsld;
  p.mean_baseline_bsld = s.mean_baseline_bsld;
  p.steps = s.steps;
  p.eval_bsld = s.eval_bsld;
  p.wall_seconds = s.wall_seconds;
  return p;
}

core::DqnTrainerConfig to_dqn(const core::TrainerConfig& t, const rl::DqnConfig& dqn) {
  core::DqnTrainerConfig c;
  c.dqn = dqn;
  c.base_policy = t.base_policy;
  c.epochs = t.epochs;
  c.trajectories_per_epoch = t.trajectories_per_epoch;
  c.jobs_per_trajectory = t.jobs_per_trajectory;
  c.env = t.env;
  c.agent = t.agent;
  c.seed = t.seed;
  c.threads = t.threads;
  c.eval_every = t.eval_every;
  c.eval_samples = t.eval_samples;
  c.eval_sample_jobs = t.eval_sample_jobs;
  c.keep_best = t.keep_best;
  return c;
}

core::ReinforceTrainerConfig to_reinforce(const core::TrainerConfig& t,
                                          const rl::ReinforceConfig& reinforce) {
  core::ReinforceTrainerConfig c;
  c.reinforce = reinforce;
  c.base_policy = t.base_policy;
  c.epochs = t.epochs;
  c.trajectories_per_epoch = t.trajectories_per_epoch;
  c.jobs_per_trajectory = t.jobs_per_trajectory;
  c.env = t.env;
  c.agent = t.agent;
  c.seed = t.seed;
  c.threads = t.threads;
  c.eval_every = t.eval_every;
  c.eval_samples = t.eval_samples;
  c.eval_sample_jobs = t.eval_sample_jobs;
  c.keep_best = t.keep_best;
  return c;
}

}  // namespace

namespace {

/// Resolve a warm-start (init_agent) reference against `store`: a
/// registered spec name (via its fingerprint), a raw store key, or a
/// model file path. Throws naming the missing prerequisite.
core::Agent load_init_agent(const std::string& ref, const Store& store,
                            const std::string& spec_name) {
  if (TrainingRegistry::instance().contains(ref)) {
    const std::string key = fingerprint(find_training_spec(ref));
    if (store.contains(key)) return store.load(key);
    // The registered spec's exact fingerprint is absent — fall back to a
    // UNIQUE entry trained under this spec name, mirroring resolve_agent:
    // CLI budget overrides (`rlbf_run train --ablations --epochs=...`)
    // change the source's content address but still record its name.
    std::vector<StoreEntry> named;
    for (const StoreEntry& entry : store.list()) {
      if (entry.name == ref) named.push_back(entry);
    }
    if (named.size() == 1) {
      util::log_info("warm start '", ref, "': registered fingerprint ", key,
                     " absent; using the unique same-name store entry ",
                     named[0].key);
      return core::Agent::load(named[0].path);
    }
    if (named.size() > 1) {
      std::string keys;
      for (const auto& entry : named) {
        keys += (keys.empty() ? "" : ", ") + entry.key;
      }
      throw std::runtime_error(
          "training spec '" + spec_name + "': warm-start reference '" + ref +
          "' is ambiguous: store '" + store.root() + "' holds " +
          std::to_string(named.size()) + " entries trained under that name (" +
          keys + ") — reference one key directly");
    }
    throw std::runtime_error(
        "training spec '" + spec_name + "': warm-start agent for spec '" + ref +
        "' (key " + key + ") is not in model store '" + store.root() +
        "' — train it first: rlbf_run train --spec=" + ref);
  }
  if (store.contains(ref)) return store.load(ref);
  std::error_code ec;
  if (std::filesystem::is_regular_file(ref, ec)) return core::Agent::load(ref);
  throw std::runtime_error("training spec '" + spec_name +
                           "': cannot resolve warm-start agent '" + ref +
                           "' (not a spec name, store key, or model file)");
}

/// The worker-side flags that reconstruct `spec`'s training setup in a
/// collect-rollouts subprocess: the registered spec name plus the
/// overrides the train CLI can apply (seed, trace size, trajectory
/// length). Throws unless re-applying exactly those overrides to the
/// registered spec reproduces `spec`'s canonical string — the proof
/// that worker-side collection samples the same trace, environment, and
/// reward shaping the learner would have used in-process.
std::vector<std::string> rollout_worker_args(const TrainingSpec& spec,
                                             const TrainOptions& options) {
  if (!TrainingRegistry::instance().contains(spec.name)) {
    throw std::invalid_argument(
        "train: --rollout_workers requires a registered training spec "
        "(workers reconstruct the setup by name); '" +
        spec.name + "' is not registered");
  }
  TrainingSpec rebuilt = find_training_spec(spec.name);
  rebuilt.trainer.seed = spec.trainer.seed;
  rebuilt.workload.trace_jobs = spec.workload.trace_jobs;
  rebuilt.trainer.jobs_per_trajectory = spec.trainer.jobs_per_trajectory;
  rebuilt.trainer.epochs = spec.trainer.epochs;
  rebuilt.trainer.trajectories_per_epoch = spec.trainer.trajectories_per_epoch;
  rebuilt.trainer.threads = spec.trainer.threads;
  rebuilt.init_agent = spec.init_agent;
  if (canonical_string(rebuilt) != canonical_string(spec)) {
    throw std::invalid_argument(
        "train: --rollout_workers cannot reproduce spec '" + spec.name +
        "' from its registered definition plus CLI overrides — the spec "
        "was modified beyond seed/jobs/traj_jobs/epochs/trajectories; "
        "run in-process (--rollout_workers=0)");
  }
  std::vector<std::string> args = {
      "--spec=" + spec.name,
      "--seed=" + std::to_string(spec.trainer.seed),
      "--jobs=" + std::to_string(spec.workload.trace_jobs),
      "--traj_jobs=" + std::to_string(spec.trainer.jobs_per_trajectory)};
  if (options.rollout.worker_threads != 0) {
    args.push_back("--threads=" +
                   std::to_string(options.rollout.worker_threads));
  }
  return args;
}

/// Shared body of train_spec / train_on_trace: run the spec's algorithm
/// over `trace` and commit the result under `key`.
TrainOutcome run_training(const swf::Trace& trace, const TrainingSpec& spec,
                          const std::string& key, const std::string& canonical,
                          Store& store, const TrainOptions& options) {
  obs::Span span = obs::Span::labeled("train " + spec.name, "train");
  obs::ScopedTimer timer("model.train_seconds");
  if (obs::enabled()) obs::counter("model.trains").add(1);
  TrainOutcome outcome;
  core::TrainerConfig cfg = spec.trainer;
  if (options.threads != 0) cfg.threads = options.threads;

  // The process rollout transport, when requested: every epoch's
  // collection fans out to collect-rollouts subprocesses. Constructed
  // before the trainer so malformed transport options fail fast.
  std::unique_ptr<dist::ProcessCollector> collector;
  if (options.rollout.workers > 0) {
    dist::RolloutTransportOptions transport;
    transport.worker = options.rollout.worker_binary;
    transport.worker_args = rollout_worker_args(spec, options);
    transport.work_dir = options.rollout.work_dir;
    transport.workers = options.rollout.workers;
    transport.retries = options.rollout.retries;
    transport.timeout_seconds = options.rollout.timeout_seconds;
    transport.inject_failures = options.rollout.inject_failures;
    transport.worker_metrics = options.rollout.worker_metrics;
    transport.worker_trace = options.rollout.worker_trace;
    transport.worker_series = options.rollout.worker_series;
    transport.heartbeat_seconds = options.rollout.heartbeat_seconds;
    transport.on_heartbeat = options.rollout.on_heartbeat;
    transport.hosts = options.rollout.hosts;
    transport.command_template = options.rollout.command_template;
    transport.fetch_template = options.rollout.fetch_template;
    transport.on_event = options.rollout.on_event;
    collector = std::make_unique<dist::ProcessCollector>(std::move(transport));
  }
  // Installs the transport on a trainer: workers load the learner's
  // live agent from a per-epoch checkpoint (exact-text model format, so
  // the round-trip is bit-exact).
  const auto attach_collector = [&](auto& trainer) {
    // The series recorder rides along with the transport seam: both are
    // pure observers the trainers consult per epoch.
    trainer.set_series(options.series);
    if (!collector) return;
    trainer.set_collector(collector.get());
    collector->set_save_model(
        [&agent = trainer.agent(), &spec](const std::string& path) {
          if (!agent.save(path, {{"spec_name", spec.name},
                                 {"rollout_checkpoint", "1"}})) {
            throw std::runtime_error(
                "rollout transport: cannot write model checkpoint " + path);
          }
        });
  };

  // Best-so-far tracking shared by every algorithm branch: the trainers
  // evaluate the *greedy* policy on held-out sequences, and at an
  // improving evaluation epoch the live agent IS the best checkpoint.
  double best_eval = std::numeric_limits<double>::infinity();
  std::size_t epochs_run = 0;
  // Final-epoch stats and the per-epoch greedy-eval curve are persisted
  // with the entry, so a cache hit can reproduce everything a bench
  // prints about the training run without retraining.
  TrainProgress last;
  std::vector<double> eval_curve;
  std::vector<double> reward_curve;
  std::vector<double> bsld_curve;
  const std::string ckpt = store.checkpoint_path(key);
  const auto make_observer = [&](const core::Agent& live_agent, auto stats_map) {
    // Init-capture the referent: capturing the reference PARAMETER by
    // reference would dangle once make_observer returns.
    return [&, stats_map, &agent = live_agent](const auto& stats) {
      const TrainProgress p = stats_map(stats);
      ++epochs_run;
      last = p;
      eval_curve.push_back(p.eval_bsld);
      reward_curve.push_back(p.mean_reward);
      bsld_curve.push_back(p.mean_bsld);
      if (!std::isnan(p.eval_bsld) && p.eval_bsld < best_eval) {
        best_eval = p.eval_bsld;
        if (options.checkpoint) {
          agent.save(ckpt, {{"spec_name", spec.name},
                            {"checkpoint", "1"},
                            {"epoch", std::to_string(p.epoch)}});
        }
      }
      if (options.on_progress) options.on_progress(spec, p);
    };
  };

  std::optional<core::Agent> init;
  if (!spec.init_agent.empty()) {
    init.emplace(load_init_agent(spec.init_agent, store, spec.name));
  }

  const core::Agent* trained = nullptr;
  std::unique_ptr<core::Trainer> ppo;
  std::unique_ptr<core::DqnTrainer> dqn;
  std::unique_ptr<core::ReinforceTrainer> reinforce;
  if (spec.algorithm == "ppo") {
    ppo = init ? std::make_unique<core::Trainer>(trace, cfg, *init)
               : std::make_unique<core::Trainer>(trace, cfg);
    attach_collector(*ppo);
    ppo->train(make_observer(
        ppo->agent(), [](const core::EpochStats& s) { return from_stats(s); }));
    trained = &ppo->agent();
  } else if (spec.algorithm == "dqn") {
    const core::DqnTrainerConfig dcfg = to_dqn(cfg, spec.dqn);
    dqn = init ? std::make_unique<core::DqnTrainer>(trace, dcfg, *init)
               : std::make_unique<core::DqnTrainer>(trace, dcfg);
    attach_collector(*dqn);
    dqn->train(make_observer(dqn->agent(), [](const core::AltEpochStats& s) {
      return from_stats(s);
    }));
    trained = &dqn->agent();
  } else if (spec.algorithm == "reinforce") {
    const core::ReinforceTrainerConfig rcfg = to_reinforce(cfg, spec.reinforce);
    reinforce = init ? std::make_unique<core::ReinforceTrainer>(trace, rcfg, *init)
                     : std::make_unique<core::ReinforceTrainer>(trace, rcfg);
    attach_collector(*reinforce);
    reinforce->train(make_observer(
        reinforce->agent(),
        [](const core::AltEpochStats& s) { return from_stats(s); }));
    trained = &reinforce->agent();
  } else {
    throw std::invalid_argument("training spec '" + spec.name +
                                "': unknown algorithm '" + spec.algorithm +
                                "' (known: ppo, dqn, reinforce)");
  }

  std::map<std::string, std::string> meta;
  meta["algorithm"] = spec.algorithm;
  meta["workload"] = spec.workload.workload;
  meta["trace_jobs"] = std::to_string(spec.workload.trace_jobs);
  meta["base_policy"] = cfg.base_policy;
  meta["epochs"] = std::to_string(cfg.epochs);
  meta["trajectories_per_epoch"] = std::to_string(cfg.trajectories_per_epoch);
  meta["jobs_per_trajectory"] = std::to_string(cfg.jobs_per_trajectory);
  meta["seed"] = std::to_string(cfg.seed);
  if (!spec.init_agent.empty()) meta["init_agent"] = spec.init_agent;
  if (std::isfinite(best_eval)) {
    meta["best_eval_bsld"] = exp::format_double_exact(best_eval);
  }
  if (epochs_run > 0) {
    meta["final_reward"] = exp::format_double_exact(last.mean_reward);
    meta["final_train_bsld"] = exp::format_double_exact(last.mean_bsld);
    meta["final_steps"] = std::to_string(last.steps);
    // One value per epoch ("nan" on non-evaluation epochs), so benches
    // can reprint convergence curves from a cache hit. reward/bsld ride
    // along so `rlbf_run curves --store` can render full training
    // curves without the series sidecar.
    const auto join_curve = [](const std::vector<double>& values) {
      std::string curve;
      for (const double v : values) {
        if (!curve.empty()) curve += ',';
        curve += std::isnan(v) ? "nan" : exp::format_double_exact(v);
      }
      return curve;
    };
    meta["eval_curve"] = join_curve(eval_curve);
    meta["reward_curve"] = join_curve(reward_curve);
    meta["bsld_curve"] = join_curve(bsld_curve);
  }

  outcome.entry = store.put(key, *trained, spec.name, meta, canonical);
  outcome.epochs_run = epochs_run;
  if (collector) outcome.rollout_jobs = collector->jobs();
  if (std::isfinite(best_eval)) outcome.best_eval_bsld = best_eval;
  std::error_code ec;
  std::filesystem::remove(ckpt, ec);  // superseded by the committed entry
  return outcome;
}

}  // namespace

TrainOutcome train_spec(const TrainingSpec& spec, Store& store,
                        const TrainOptions& options) {
  const std::string key = fingerprint(spec);
  if (!options.force) {
    if (auto entry = store.lookup(key)) {
      if (obs::enabled()) obs::counter("model.train_cache_hits").add(1);
      TrainOutcome outcome;
      outcome.entry = std::move(*entry);
      outcome.cache_hit = true;
      return outcome;
    }
  }
  const std::shared_ptr<const swf::Trace> trace =
      exp::build_trace_cached(spec.workload, spec.trainer.seed);
  return run_training(*trace, spec, key, canonical_string(spec), store, options);
}

TrainOutcome train_on_trace(const swf::Trace& trace, const TrainingSpec& spec,
                            Store& store, const TrainOptions& options) {
  if (options.rollout.workers > 0) {
    // A collect-rollouts worker reconstructs its trace from the spec's
    // workload fields; an explicit caller-built trace has no such recipe.
    throw std::invalid_argument(
        "train_on_trace: --rollout_workers is not supported with an "
        "explicit trace (workers rebuild the trace from the spec)");
  }
  // The spec's workload-construction fields describe nothing here — the
  // caller owns trace construction — so the content address hashes the
  // trainer protocol plus the trace itself.
  const std::string canonical = canonical_string(spec) + "trace_hash " +
                                trace_fingerprint(trace) + "\n";
  const std::string key = fnv1a_hex(canonical);
  if (!options.force) {
    if (auto entry = store.lookup(key)) {
      if (obs::enabled()) obs::counter("model.train_cache_hits").add(1);
      TrainOutcome outcome;
      outcome.entry = std::move(*entry);
      outcome.cache_hit = true;
      return outcome;
    }
  }
  return run_training(trace, spec, key, canonical, store, options);
}

std::vector<std::size_t> train_shard_indices(
    const std::vector<TrainingSpec>& specs, std::size_t shard_index,
    std::size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("train_specs: shard count must be >= 1");
  }
  if (shard_index >= shard_count) {
    throw std::invalid_argument(
        "train_specs: shard index " + std::to_string(shard_index) +
        " out of range for " + std::to_string(shard_count) + " shard(s)");
  }
  // Union specs connected through init_agent references (matched by spec
  // name within the list) so a warm-start consumer always shares its
  // source's shard. Plain find-root union: chains are short (a fine-tune
  // arm and its source), determinism is what matters.
  std::vector<std::size_t> root(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) root[i] = i;
  const auto find_root = [&](std::size_t i) {
    while (root[i] != i) i = root[i];
    return i;
  };
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].init_agent.empty()) continue;
    for (std::size_t j = 0; j < specs.size(); ++j) {
      if (j != i && specs[j].name == specs[i].init_agent) {
        // Attach the later root under the earlier one, so a group's root
        // is always its first member in list order.
        const std::size_t a = find_root(i);
        const std::size_t b = find_root(j);
        if (a != b) root[std::max(a, b)] = std::min(a, b);
        break;
      }
    }
  }
  // Groups in order of first member; group k goes to shard k % count.
  std::vector<std::size_t> group_ordinal(specs.size(), 0);
  std::size_t groups = 0;
  std::vector<std::size_t> owned;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::size_t r = find_root(i);
    if (r == i) group_ordinal[i] = groups++;
    if (group_ordinal[r] % shard_count == shard_index) owned.push_back(i);
  }
  return owned;
}

std::vector<TrainOutcome> train_specs(const std::vector<TrainingSpec>& specs,
                                      Store& store, const TrainOptions& options,
                                      std::uint64_t master_seed) {
  // Pre-split every seed on the calling thread before any training runs,
  // mirroring exp::run_sweep's replication convention. Seeds cover the
  // FULL list even when sharded, so shard membership never changes what
  // any one spec trains with.
  std::vector<std::uint64_t> seeds(specs.size(), 0);
  if (master_seed != 0 && !specs.empty()) {
    util::Rng root(master_seed);
    seeds[0] = master_seed;
    for (std::size_t i = 1; i < specs.size(); ++i) seeds[i] = root.split()();
  }
  const std::vector<std::size_t> owned =
      train_shard_indices(specs, options.shard_index, options.shard_count);
  std::vector<TrainOutcome> outcomes;
  outcomes.reserve(owned.size());
  for (const std::size_t i : owned) {
    TrainingSpec spec = specs[i];
    if (master_seed != 0) spec.trainer.seed = seeds[i];
    obs::ScopedTimer timer("model.spec_seconds");
    outcomes.push_back(train_spec(spec, store, options));
    const double seconds = timer.stop();
    outcomes.back().spec_index = i;
    // Split the per-spec wall time by outcome so a bench can compare
    // train cost against cache-hit cost directly.
    if (obs::enabled()) {
      obs::histogram(outcomes.back().cache_hit ? "model.cache_hit_seconds"
                                               : "model.train_spec_seconds")
          .observe(seconds);
    }
  }
  return outcomes;
}

namespace {

std::mutex g_agent_cache_mutex;
std::unordered_map<std::string, std::shared_ptr<const core::Agent>> g_agent_cache;

}  // namespace

std::shared_ptr<const core::Agent> resolve_agent(const std::string& ref) {
  if (ref.empty()) {
    throw std::invalid_argument("resolve_agent: empty agent reference");
  }
  Store& store = default_store();
  const std::string cache_key = store.root() + "|" + ref;
  {
    std::lock_guard<std::mutex> lock(g_agent_cache_mutex);
    const auto it = g_agent_cache.find(cache_key);
    if (it != g_agent_cache.end()) return it->second;
  }

  std::shared_ptr<const core::Agent> agent;
  std::error_code ec;
  if (std::filesystem::is_regular_file(ref, ec)) {
    agent = std::make_shared<const core::Agent>(core::Agent::load(ref));
  } else if (TrainingRegistry::instance().contains(ref)) {
    const TrainingSpec& spec = find_training_spec(ref);
    const std::string key = fingerprint(spec);
    if (store.contains(key)) {
      agent = std::make_shared<const core::Agent>(store.load(key));
    } else {
      // The registered spec's exact fingerprint is absent — fall back to
      // a UNIQUE store entry trained under this spec name (e.g. with CLI
      // budget overrides, which change the content address). Ambiguity
      // is an error: "which model?" must never be guessed.
      std::vector<StoreEntry> named;
      for (const StoreEntry& entry : store.list()) {
        if (entry.name == ref) named.push_back(entry);
      }
      if (named.size() == 1) {
        util::log_info("agent '", ref, "': registered fingerprint ", key,
                       " absent; using the unique same-name store entry ",
                       named[0].key);
        agent = std::make_shared<const core::Agent>(
            core::Agent::load(named[0].path));
      } else if (named.size() > 1) {
        std::string keys;
        for (const auto& entry : named) {
          keys += (keys.empty() ? "" : ", ") + entry.key;
        }
        throw std::runtime_error(
            "agent reference '" + ref + "' is ambiguous: store '" +
            store.root() + "' holds " + std::to_string(named.size()) +
            " entries trained under that spec name (" + keys +
            ") — reference one key directly");
      } else {
        throw std::runtime_error(
            "agent for training spec '" + ref + "' (key " + key +
            ") is not in model store '" + store.root() +
            "' — train it first: rlbf_run train --spec=" + ref);
      }
    }
  } else if (store.contains(ref)) {
    agent = std::make_shared<const core::Agent>(store.load(ref));
  } else {
    std::string known;
    for (const auto& name : training_spec_names()) {
      known += (known.empty() ? "" : ", ") + name;
    }
    throw std::runtime_error(
        "cannot resolve agent reference '" + ref +
        "': not a model file, a training-spec name (known: " + known +
        "), or a key in model store '" + store.root() + "'");
  }

  std::lock_guard<std::mutex> lock(g_agent_cache_mutex);
  auto [it, inserted] = g_agent_cache.emplace(cache_key, std::move(agent));
  (void)inserted;
  return it->second;
}

void clear_agent_cache() {
  std::lock_guard<std::mutex> lock(g_agent_cache_mutex);
  g_agent_cache.clear();
}

}  // namespace rlbf::model
