// Content-addressed on-disk store for trained agents.
//
// Layout under one root directory:
//   <root>/index.tsv       key \t spec-name \t file \t last-used
//                          (registration order; "rlbf-model-store v2" —
//                          v1 indexes without the last-used column are
//                          migrated transparently on open)
//   <root>/<key>.model     the agent (nn/serialize.h format, meta inside)
//   <root>/<key>.spec      the canonical TrainingSpec text the key hashes
//
// Keys are model::fingerprint() content addresses, so a lookup hit means
// "an agent trained under exactly this configuration already exists" —
// the train-once-reuse-everywhere contract `rlbf_run train` and the
// trained-agent scenarios are built on. The index is a convenience: when
// missing or stale it is rebuilt by scanning *.model files, so a store
// directory is self-describing and safe to rsync around.
//
// For shipping agents between machines without rsyncing a whole store,
// export_bundle()/import_bundle() pack chosen entries into a portable
// directory and re-verify every fingerprint on the way back in; for
// long-lived shared stores, evict_lru() enforces a size cap using the
// index's last-used column (touched on every lookup/load).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/agent.h"

namespace rlbf::model {

struct StoreEntry {
  std::string key;   // fingerprint (16 hex digits)
  std::string name;  // training-spec name at put() time ("" if unknown)
  std::string path;  // the .model file
  std::map<std::string, std::string> meta;  // as stored by Agent::save
  /// Logical LRU clock: bumped store-wide on every lookup()/load()/put()
  /// of this entry, persisted in index.tsv, 0 for never-used (or
  /// migrated-from-v1) entries. Drives evict_lru().
  std::uint64_t last_used = 0;
};

class Store {
 public:
  /// Opens (and creates, if needed) the store rooted at `root`.
  /// Throws std::runtime_error when the directory cannot be created.
  explicit Store(std::string root);

  /// Flushes any un-persisted LRU clock updates (best effort: reads must
  /// work against read-only stores, so a failed flush only warns).
  ~Store();

  const std::string& root() const { return root_; }

  bool contains(const std::string& key) const;

  /// Find an entry and touch its LRU clock (contains() does not touch).
  std::optional<StoreEntry> lookup(const std::string& key) const;

  /// Load the stored agent (touches the LRU clock). Throws
  /// std::runtime_error on unknown keys or unreadable model files.
  core::Agent load(const std::string& key) const;

  /// Commit an agent under `key`, overwriting any previous entry. `meta`
  /// is stored in the model file; `canonical` (may be empty) is written
  /// to the .spec sidecar. Throws std::runtime_error on I/O failure.
  StoreEntry put(const std::string& key, const core::Agent& agent,
                 const std::string& name,
                 const std::map<std::string, std::string>& meta,
                 const std::string& canonical = "");

  /// Entries in index order.
  std::vector<StoreEntry> list() const;

  /// Remove every entry whose key is NOT in `referenced` (model + spec
  /// sidecar files included). Returns the removed keys. An entry whose
  /// .model cannot actually be deleted stays in the index (and is
  /// logged), never half-forgotten: dropping it while the file survives
  /// would let a later scan rebuild resurrect it with stale meta.
  std::vector<std::string> prune(const std::vector<std::string>& referenced);

  struct EvictionResult {
    std::vector<std::string> removed;  // eviction order (least recent first)
    std::uint64_t bytes_before = 0;    // model+spec+ckpt bytes, all entries
    std::uint64_t bytes_after = 0;
  };

  /// Shrink the store to at most `max_bytes` of model/spec/checkpoint
  /// data by removing least-recently-used entries. Keys in `referenced`
  /// are never evicted, even when the store stays over the cap (the
  /// result's bytes_after tells); removal failures keep their entry,
  /// exactly like prune(). Ties on the LRU clock fall back to index
  /// (registration) order, so eviction is deterministic.
  EvictionResult evict_lru(std::uint64_t max_bytes,
                           const std::vector<std::string>& referenced = {});

  /// Pack the given entries (all of them when `keys` is empty) into the
  /// portable bundle directory `dir`: each entry's .model, its .spec
  /// sidecar when present, and a "bundle.tsv" manifest. Returns the
  /// exported keys. Throws std::runtime_error on unknown keys or I/O
  /// failure.
  std::vector<std::string> export_bundle(
      const std::string& dir, const std::vector<std::string>& keys = {}) const;

  /// Like export_bundle, but `keys` means exactly `keys`: an empty list
  /// writes a valid, importable ZERO-entry bundle instead of "all
  /// entries". This is what a sharded `train --export_bundle` ships —
  /// an empty shard must never leak unrelated store contents into its
  /// bundle just because the worker store happened to be non-empty.
  std::vector<std::string> export_bundle_exact(
      const std::string& dir, const std::vector<std::string>& keys) const;

  struct ImportReport {
    std::vector<std::string> imported;          // newly adopted keys
    std::vector<std::string> skipped_existing;  // already present (same address)
  };

  /// Import a bundle directory produced by export_bundle. Every entry is
  /// re-verified before adoption: the .model must load in full, its
  /// embedded fingerprint meta must equal the manifest key, and when a
  /// .spec sidecar is present the key must equal fnv1a_hex(sidecar) —
  /// a corrupt or mismatched model is rejected with a named
  /// std::runtime_error, never silently adopted. Entries whose key the
  /// store already holds are skipped (equal content addresses mean equal
  /// content). Entries verified before a failing one stay imported.
  ImportReport import_bundle(const std::string& dir);

  std::string model_path(const std::string& key) const;
  std::string spec_path(const std::string& key) const;
  std::string checkpoint_path(const std::string& key) const;

 private:
  std::vector<std::string> export_bundle_impl(const std::string& dir,
                                              const std::vector<std::string>& keys,
                                              bool all_when_empty) const;
  void load_index_locked();
  void rebuild_from_scan_locked();
  /// Read-merge-write of index.tsv under a cross-process flock:
  /// concurrent additions by other processes survive, removals
  /// propagate via .model file existence, clocks take the max.
  void save_index_locked() const;
  const StoreEntry* find_locked(const std::string& key) const;
  void touch_locked(StoreEntry& entry) const;
  /// Bytes actually freed, or nullopt when the .model removal failed
  /// (the entry must then stay in the index).
  std::optional<std::uint64_t> remove_entry_files_locked(const StoreEntry& entry);
  std::uint64_t entry_bytes_locked(const StoreEntry& entry) const;

  std::string root_;
  // mutable: lookup()/load() keep their const signatures but advance the
  // LRU clock; every access is serialized by mutex_. Touches only mark
  // the index dirty — it is persisted by the next real index write or
  // the destructor, so reads stay O(1) in I/O (and work, minus clock
  // durability, on read-only stores).
  mutable std::vector<StoreEntry> entries_;
  // Keys dropped at load because their .model was unreadable: the
  // merged index save must not resurrect them from the disk rows.
  mutable std::vector<std::string> unreadable_keys_;
  mutable std::uint64_t use_clock_ = 0;
  mutable bool dirty_ = false;
  mutable std::mutex mutex_;
};

/// Resolve one bundle argument to concrete bundle directories: a
/// directory holding a bundle.tsv manifest is itself the single bundle;
/// otherwise bundles one or two levels down count, in sorted path order
/// — covering both a flat directory of bundles and the orchestrator's
/// kept work dir (<work>/worker<i>/bundle). Throws std::runtime_error
/// naming `path` when it is not a directory or yields no bundles.
std::vector<std::string> find_bundle_dirs(const std::string& path);

/// The process-wide store trained-agent scenario references resolve
/// against. Root defaults to $RLBF_MODEL_STORE, or "models"; the CLI's
/// --store flag calls set_default_store_root.
Store& default_store();
void set_default_store_root(const std::string& root);
std::string default_store_root();

}  // namespace rlbf::model
