// Content-addressed on-disk store for trained agents.
//
// Layout under one root directory:
//   <root>/index.tsv       key \t spec-name \t file   (registration order)
//   <root>/<key>.model     the agent (nn/serialize.h format, meta inside)
//   <root>/<key>.spec      the canonical TrainingSpec text the key hashes
//
// Keys are model::fingerprint() content addresses, so a lookup hit means
// "an agent trained under exactly this configuration already exists" —
// the train-once-reuse-everywhere contract `rlbf_run train` and the
// trained-agent scenarios are built on. The index is a convenience: when
// missing or stale it is rebuilt by scanning *.model files, so a store
// directory is self-describing and safe to rsync around.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/agent.h"

namespace rlbf::model {

struct StoreEntry {
  std::string key;   // fingerprint (16 hex digits)
  std::string name;  // training-spec name at put() time ("" if unknown)
  std::string path;  // the .model file
  std::map<std::string, std::string> meta;  // as stored by Agent::save
};

class Store {
 public:
  /// Opens (and creates, if needed) the store rooted at `root`.
  /// Throws std::runtime_error when the directory cannot be created.
  explicit Store(std::string root);

  const std::string& root() const { return root_; }

  bool contains(const std::string& key) const;
  std::optional<StoreEntry> lookup(const std::string& key) const;

  /// Load the stored agent. Throws std::runtime_error on unknown keys or
  /// unreadable model files.
  core::Agent load(const std::string& key) const;

  /// Commit an agent under `key`, overwriting any previous entry. `meta`
  /// is stored in the model file; `canonical` (may be empty) is written
  /// to the .spec sidecar. Throws std::runtime_error on I/O failure.
  StoreEntry put(const std::string& key, const core::Agent& agent,
                 const std::string& name,
                 const std::map<std::string, std::string>& meta,
                 const std::string& canonical = "");

  /// Entries in index order.
  std::vector<StoreEntry> list() const;

  /// Remove every entry whose key is NOT in `referenced` (model + spec
  /// sidecar files included). Returns the removed keys.
  std::vector<std::string> prune(const std::vector<std::string>& referenced);

  std::string model_path(const std::string& key) const;
  std::string spec_path(const std::string& key) const;
  std::string checkpoint_path(const std::string& key) const;

 private:
  void load_index_locked();
  void rebuild_from_scan_locked();
  void save_index_locked() const;
  const StoreEntry* find_locked(const std::string& key) const;

  std::string root_;
  std::vector<StoreEntry> entries_;
  mutable std::mutex mutex_;
};

/// The process-wide store trained-agent scenario references resolve
/// against. Root defaults to $RLBF_MODEL_STORE, or "models"; the CLI's
/// --store flag calls set_default_store_root.
Store& default_store();
void set_default_store_root(const std::string& root);
std::string default_store_root();

}  // namespace rlbf::model
