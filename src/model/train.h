// The training executor: resolve a TrainingSpec to a trace (through the
// exp trace cache), run the right trainer (PPO, or the DQN/REINFORCE
// ablation arms), checkpoint best-so-far agents next to the store entry,
// and commit the result under the spec's fingerprint. A second call with
// an equal fingerprint is a cache hit and runs nothing.
//
// resolve_agent() is the deployment-side counterpart: it turns the agent
// reference a ScenarioSpec carries (training-spec name, store key, or
// model file path) into a shared, process-cached core::Agent — the hook
// exp::run_scenario / evaluate_scenario use for RL-backed backfilling.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "model/store.h"
#include "model/training_spec.h"

namespace rlbf::model {

/// Algorithm-independent per-epoch progress (core::EpochStats and
/// core::AltEpochStats both map onto this).
struct TrainProgress {
  std::size_t epoch = 0;
  double mean_reward = 0.0;
  double mean_bsld = 0.0;
  double mean_baseline_bsld = 0.0;
  std::size_t steps = 0;
  /// Greedy held-out evaluation bsld; NaN on non-evaluation epochs.
  double eval_bsld = std::numeric_limits<double>::quiet_NaN();
  double wall_seconds = 0.0;
};

struct TrainOptions {
  /// Worker threads for collection/updates; 0 = the spec's setting (which
  /// usually means hardware concurrency). Runtime-only: results and
  /// fingerprints are identical at any value.
  std::size_t threads = 0;
  /// Retrain and overwrite even when the store already holds the key.
  bool force = false;
  /// Write the best-so-far agent to <store>/<key>.ckpt whenever the
  /// held-out evaluation improves, so long runs are resumable artifacts
  /// even if interrupted; the checkpoint is removed on commit.
  bool checkpoint = true;
  /// Observes every epoch of every spec (progress tables, logging).
  std::function<void(const TrainingSpec&, const TrainProgress&)> on_progress;
};

struct TrainOutcome {
  StoreEntry entry;
  bool cache_hit = false;      // true: nothing ran, the store already had it
  std::size_t epochs_run = 0;  // 0 on cache hits
  double best_eval_bsld = std::numeric_limits<double>::quiet_NaN();
};

/// Train one spec into the store (or return the cached entry). Throws
/// std::invalid_argument on unknown algorithms and propagates trainer
/// and store errors.
TrainOutcome train_spec(const TrainingSpec& spec, Store& store,
                        const TrainOptions& options = {});

/// Bench-style entry point: train on an explicit, possibly transformed
/// trace instead of a spec-resolved one. The store key fingerprints the
/// spec's trainer protocol PLUS a content hash of the trace, so two
/// different transformed traces can never collide on one cache entry.
TrainOutcome train_on_trace(const swf::Trace& trace, const TrainingSpec& spec,
                            Store& store, const TrainOptions& options = {});

/// Train several specs sequentially (each trainer parallelizes
/// internally over the thread pool). When `master_seed` is nonzero, each
/// spec's seed is pre-split from util::Rng(master_seed) on the calling
/// thread — spec 0 trains at master_seed itself, matching the sweep
/// executor's replication convention — so one flag reseeds a whole batch
/// deterministically.
std::vector<TrainOutcome> train_specs(const std::vector<TrainingSpec>& specs,
                                      Store& store,
                                      const TrainOptions& options = {},
                                      std::uint64_t master_seed = 0);

/// Resolve an agent reference against the default store:
///   1. an existing model file path — loaded directly;
///   2. a registered training-spec name — fingerprinted and looked up
///      (throws, naming the `rlbf_run train` command to run, when the
///      model has not been trained yet);
///   3. a raw store key.
/// Results are cached per (store root, reference) for the process
/// lifetime, so sweeps resolve each agent once.
std::shared_ptr<const core::Agent> resolve_agent(const std::string& ref);

/// Drop the resolve_agent cache (tests; after retraining with --force).
void clear_agent_cache();

}  // namespace rlbf::model
