// The training executor: resolve a TrainingSpec to a trace (through the
// exp trace cache), run the right trainer (PPO, or the DQN/REINFORCE
// ablation arms), checkpoint best-so-far agents next to the store entry,
// and commit the result under the spec's fingerprint. A second call with
// an equal fingerprint is a cache hit and runs nothing.
//
// resolve_agent() is the deployment-side counterpart: it turns the agent
// reference a ScenarioSpec carries (training-spec name, store key, or
// model file path) into a shared, process-cached core::Agent — the hook
// exp::run_scenario / evaluate_scenario use for RL-backed backfilling.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/job.h"
#include "model/store.h"
#include "model/training_spec.h"

namespace rlbf::obs {
class SeriesRecorder;
}  // namespace rlbf::obs

namespace rlbf::model {

/// Algorithm-independent per-epoch progress (core::EpochStats and
/// core::AltEpochStats both map onto this).
struct TrainProgress {
  std::size_t epoch = 0;
  double mean_reward = 0.0;
  double mean_bsld = 0.0;
  double mean_baseline_bsld = 0.0;
  std::size_t steps = 0;
  /// Greedy held-out evaluation bsld; NaN on non-evaluation epochs.
  double eval_bsld = std::numeric_limits<double>::quiet_NaN();
  double wall_seconds = 0.0;
};

struct TrainOptions {
  /// Worker threads for collection/updates; 0 = the spec's setting (which
  /// usually means hardware concurrency). Runtime-only: results and
  /// fingerprints are identical at any value.
  std::size_t threads = 0;
  /// Retrain and overwrite even when the store already holds the key.
  bool force = false;
  /// Write the best-so-far agent to <store>/<key>.ckpt whenever the
  /// held-out evaluation improves, so long runs are resumable artifacts
  /// even if interrupted; the checkpoint is removed on commit.
  bool checkpoint = true;
  /// Observes every epoch of every spec (progress tables, logging).
  std::function<void(const TrainingSpec&, const TrainProgress&)> on_progress;
  /// Time-series recorder attached to every trainer (borrowed; must
  /// outlive the call). Each epoch records the train.* curves keyed by
  /// epoch number (--series_out). nullptr records nothing; recording is
  /// a pure observer, so results and store bytes are identical either
  /// way.
  obs::SeriesRecorder* series = nullptr;
  /// Distributed execution (mirroring exp::SweepOptions): train only
  /// shard `shard_index` of a `shard_count`-way partition of the spec
  /// list. The partition is round-robin over warm-start dependency
  /// GROUPS — a spec whose init_agent names another spec in the list
  /// always lands on the same shard as its source, in list order, so
  /// every shard can resolve its own warm starts against its own store.
  /// Seeds derived from a master seed are split over the FULL list
  /// before partitioning, so the union of all shards' results is
  /// identical to an unsharded run. The default 0/1 is "everything".
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  /// In-run distributed collection: with workers > 0 every trainer epoch
  /// fans its rollouts out to `rlbf_run collect-rollouts` subprocesses
  /// (dist::ProcessCollector) instead of the in-process thread pool.
  /// Requires a REGISTERED spec — the worker reconstructs the training
  /// setup from the spec name plus explicit overrides, and train_spec
  /// verifies the reconstruction reproduces the learner's canonical
  /// string before any worker launches. Results are byte-identical to
  /// workers == 0 at any worker count (rl/collect.h contract).
  struct RolloutOptions {
    std::size_t workers = 0;
    /// Worker binary (normally the running rlbf_run itself).
    std::string worker_binary;
    /// Scratch dir for model checkpoints, rollout files, and sidecars.
    std::string work_dir;
    /// Collection threads per worker process (0 = spec/hardware default).
    std::size_t worker_threads = 0;
    std::size_t retries = 1;
    double timeout_seconds = 0.0;
    std::map<std::size_t, std::size_t> inject_failures;
    bool worker_metrics = false;
    bool worker_trace = false;
    bool worker_series = false;
    /// Heartbeat interval for each epoch's job supervisor (see
    /// dist::OrchestratorOptions::heartbeat_seconds); 0 disables it.
    double heartbeat_seconds = 30.0;
    /// Fired on every supervisor heartbeat (e.g. to sample the metrics
    /// registry into the series file).
    std::function<void()> on_heartbeat;
    /// Remote transport (CommandLauncher) when command_template is set.
    std::vector<std::string> hosts;
    std::string command_template;
    std::string fetch_template;
    std::function<void(const std::string&)> on_event;
  };
  RolloutOptions rollout;
};

struct TrainOutcome {
  StoreEntry entry;
  bool cache_hit = false;      // true: nothing ran, the store already had it
  std::size_t epochs_run = 0;  // 0 on cache hits
  double best_eval_bsld = std::numeric_limits<double>::quiet_NaN();
  /// Position of this outcome's spec in the list passed to
  /// train_specs() — the global grid index even when sharded (0 for
  /// single-spec entry points), so callers never recompute the
  /// partition to pair outcomes with specs.
  std::size_t spec_index = 0;
  /// With TrainOptions::rollout.workers > 0: every collect-rollouts
  /// worker job the run launched (sidecar paths included), so the caller
  /// can merge fleet observability. Empty otherwise and on cache hits.
  std::vector<dist::JobSpec> rollout_jobs;
};

/// Train one spec into the store (or return the cached entry). Throws
/// std::invalid_argument on unknown algorithms and propagates trainer
/// and store errors.
TrainOutcome train_spec(const TrainingSpec& spec, Store& store,
                        const TrainOptions& options = {});

/// Bench-style entry point: train on an explicit, possibly transformed
/// trace instead of a spec-resolved one. The store key fingerprints the
/// spec's trainer protocol PLUS a content hash of the trace, so two
/// different transformed traces can never collide on one cache entry.
TrainOutcome train_on_trace(const swf::Trace& trace, const TrainingSpec& spec,
                            Store& store, const TrainOptions& options = {});

/// Train several specs sequentially (each trainer parallelizes
/// internally over the thread pool). When `master_seed` is nonzero, each
/// spec's seed is pre-split from util::Rng(master_seed) on the calling
/// thread — spec 0 trains at master_seed itself, matching the sweep
/// executor's replication convention — so one flag reseeds a whole batch
/// deterministically.
/// With options.shard_count > 1, only the shard's specs are trained
/// (still in list order) and the outcomes align with
/// train_shard_indices(). Throws std::invalid_argument on
/// shard_count == 0 or shard_index >= shard_count.
std::vector<TrainOutcome> train_specs(const std::vector<TrainingSpec>& specs,
                                      Store& store,
                                      const TrainOptions& options = {},
                                      std::uint64_t master_seed = 0);

/// The global spec indices shard `shard_index` of `shard_count` owns,
/// ascending — the partition train_specs runs. Round-robin over
/// warm-start dependency groups: specs connected through init_agent
/// references (by spec name, transitively) form one group assigned to
/// the shard of the group's first member; independent specs are
/// single-element groups, so with no init_agent references in the list
/// this is plain round-robin by position. Shards whose groups run out
/// come back empty — a valid result whose bundle imports zero entries.
std::vector<std::size_t> train_shard_indices(
    const std::vector<TrainingSpec>& specs, std::size_t shard_index,
    std::size_t shard_count);

/// Resolve an agent reference against the default store:
///   1. an existing model file path — loaded directly;
///   2. a registered training-spec name — fingerprinted and looked up
///      (throws, naming the `rlbf_run train` command to run, when the
///      model has not been trained yet);
///   3. a raw store key.
/// Results are cached per (store root, reference) for the process
/// lifetime, so sweeps resolve each agent once.
std::shared_ptr<const core::Agent> resolve_agent(const std::string& ref);

/// Drop the resolve_agent cache (tests; after retraining with --force).
void clear_agent_cache();

}  // namespace rlbf::model
