#include "model/training_spec.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "exp/config.h"

namespace rlbf::model {

namespace {

void put(std::ostringstream& os, const char* key, const std::string& value) {
  os << key << ' ' << value << '\n';
}
void put(std::ostringstream& os, const char* key, double value) {
  os << key << ' ' << exp::format_double_exact(value) << '\n';
}
template <typename T>
  requires std::is_integral_v<T>
void put(std::ostringstream& os, const char* key, T value) {
  os << key << ' ' << value << '\n';
}

std::string dims_string(const std::vector<std::size_t>& dims) {
  std::string out;
  for (std::size_t d : dims) {
    if (!out.empty()) out += ',';
    out += std::to_string(d);
  }
  return out;
}

}  // namespace

std::string canonical_string(const TrainingSpec& spec) {
  const core::TrainerConfig& t = spec.trainer;
  std::ostringstream os;
  os << "rlbf-training-spec v1\n";
  // Trace construction (exp::build_trace inputs; seed is trainer.seed).
  put(os, "trace", exp::trace_cache_key(spec.workload));
  put(os, "seed", t.seed);
  // Algorithm. Enum-valued knobs render as their underlying integers;
  // reordering those enums is a format change, like renaming a field.
  put(os, "algorithm", spec.algorithm);
  // Trainer protocol.
  put(os, "base_policy", t.base_policy);
  put(os, "epochs", t.epochs);
  put(os, "trajectories_per_epoch", t.trajectories_per_epoch);
  put(os, "jobs_per_trajectory", t.jobs_per_trajectory);
  put(os, "eval_every", t.eval_every);
  put(os, "eval_samples", t.eval_samples);
  put(os, "eval_sample_jobs", t.eval_sample_jobs);
  put(os, "keep_best", t.keep_best ? 1 : 0);
  // PPO update (the non-PPO arms use their algorithm defaults, which the
  // `algorithm` line above already versions).
  put(os, "ppo.gamma", t.ppo.gamma);
  put(os, "ppo.lambda", t.ppo.lambda);
  put(os, "ppo.clip_ratio", t.ppo.clip_ratio);
  put(os, "ppo.policy_lr", t.ppo.policy_lr);
  put(os, "ppo.value_lr", t.ppo.value_lr);
  put(os, "ppo.train_iters", t.ppo.train_iters);
  put(os, "ppo.minibatch_size", t.ppo.minibatch_size);
  put(os, "ppo.entropy_coef", t.ppo.entropy_coef);
  put(os, "ppo.target_kl", t.ppo.target_kl);
  put(os, "ppo.max_grad_norm", t.ppo.max_grad_norm);
  put(os, "ppo.normalize_advantages", t.ppo.normalize_advantages ? 1 : 0);
  put(os, "ppo.grad_shards", t.ppo.grad_shards);
  // Environment / reward shaping.
  put(os, "env.delay_penalty", t.env.delay_penalty);
  put(os, "env.delay_rule", static_cast<int>(t.env.delay_rule));
  put(os, "env.objective", static_cast<int>(t.env.objective));
  put(os, "env.selection", static_cast<int>(t.env.selection));
  put(os, "env.epsilon", t.env.epsilon);
  put(os, "env.sample_actions", t.env.sample_actions ? 1 : 0);
  // Agent architecture.
  put(os, "agent.kernel_policy", t.agent.kernel_policy ? 1 : 0);
  put(os, "agent.obs.max_obsv_size", t.agent.obs.max_obsv_size);
  put(os, "agent.obs.value_obsv_size", t.agent.obs.value_obsv_size);
  put(os, "agent.obs.pad_policy_obs", t.agent.obs.pad_policy_obs ? 1 : 0);
  put(os, "agent.obs.mask_inadmissible", t.agent.obs.mask_inadmissible ? 1 : 0);
  put(os, "agent.obs.stop_action", t.agent.obs.stop_action ? 1 : 0);
  put(os, "agent.obs.feature_mask", t.agent.obs.feature_mask);
  put(os, "agent.net.policy_hidden", dims_string(t.agent.net.policy_hidden));
  put(os, "agent.net.value_hidden", dims_string(t.agent.net.value_hidden));
  put(os, "agent.net.activation", static_cast<int>(t.agent.net.activation));
  put(os, "agent.net.policy_output_scale", t.agent.net.policy_output_scale);
  return os.str();
}

std::string fnv1a_hex(const std::string& text) {
  // FNV-1a 64: tiny, well-distributed, and trivially reproducible in any
  // language — the point is a stable content address, not cryptography.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string fingerprint(const TrainingSpec& spec) {
  return fnv1a_hex(canonical_string(spec));
}

std::string trace_fingerprint(const swf::Trace& trace) {
  std::ostringstream os;
  os << trace.name() << ' ' << trace.machine_procs() << ' ' << trace.size()
     << '\n';
  for (const swf::Job& job : trace.jobs()) {
    // The fields the simulator and observation builder actually read.
    os << job.submit_time << ' ' << job.run_time << ' ' << job.requested_time
       << ' ' << job.requested_procs << ' ' << job.used_procs << ' '
       << job.user_id << '\n';
  }
  return fnv1a_hex(os.str());
}

void TrainingRegistry::add(TrainingSpec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("training spec name must be non-empty");
  }
  if (contains(spec.name)) {
    throw std::invalid_argument("duplicate training spec name: " + spec.name);
  }
  specs_.push_back(std::move(spec));
}

bool TrainingRegistry::contains(const std::string& name) const {
  return std::any_of(specs_.begin(), specs_.end(),
                     [&](const TrainingSpec& s) { return s.name == name; });
}

const TrainingSpec& TrainingRegistry::get(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return spec;
  }
  std::string known;
  for (const auto& spec : specs_) {
    known += (known.empty() ? "" : ", ") + spec.name;
  }
  throw std::invalid_argument("unknown training spec '" + name +
                              "' (known: " + known + ")");
}

std::vector<std::string> TrainingRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(spec.name);
  return out;
}

namespace {

/// The paper's training protocol (§4.1.1): 100 trajectories x 256 jobs
/// per epoch, 80 PPO iterations at lr 1e-3.
TrainingSpec paper_spec(std::string name, std::string description,
                        const std::string& workload,
                        const std::string& base_policy) {
  TrainingSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.workload.workload = workload;
  spec.workload.trace_jobs = 10000;
  spec.trainer.base_policy = base_policy;
  spec.trainer.epochs = 50;
  spec.trainer.trajectories_per_epoch = 100;
  spec.trainer.jobs_per_trajectory = 256;
  spec.trainer.ppo.train_iters = 80;
  spec.trainer.ppo.policy_lr = 1e-3;
  spec.trainer.ppo.value_lr = 1e-3;
  spec.trainer.ppo.minibatch_size = 512;
  spec.trainer.seed = 1;
  return spec;
}

void register_builtins(TrainingRegistry& registry) {
  registry.add(paper_spec("sdsc-fcfs", "Paper protocol: PPO on SDSC-SP2, FCFS base",
                          "SDSC-SP2", "FCFS"));
  registry.add(paper_spec("sdsc-sjf", "Paper protocol: PPO on SDSC-SP2, SJF base",
                          "SDSC-SP2", "SJF"));
  registry.add(paper_spec("hpc2n-fcfs", "Paper protocol: PPO on HPC2N, FCFS base",
                          "HPC2N", "FCFS"));
  registry.add(paper_spec("lublin1-fcfs",
                          "Paper protocol: PPO on synthetic Lublin-1, FCFS base",
                          "Lublin-1", "FCFS"));
  registry.add(paper_spec("lublin2-fcfs",
                          "Paper protocol: PPO on synthetic Lublin-2, FCFS base",
                          "Lublin-2", "FCFS"));
  {
    auto s = paper_spec("sdsc-fcfs-dqn",
                        "Ablation arm: DQN under the PPO data-collection protocol",
                        "SDSC-SP2", "FCFS");
    s.algorithm = "dqn";
    registry.add(s);
  }
  {
    auto s = paper_spec("sdsc-fcfs-reinforce",
                        "Ablation arm: REINFORCE (single policy-gradient step)",
                        "SDSC-SP2", "FCFS");
    s.algorithm = "reinforce";
    registry.add(s);
  }
  {
    TrainingSpec s;
    s.name = "sdsc-tiny";
    s.description = "CI smoke: 2 epochs x 6 tiny trajectories on 2000 SDSC jobs";
    s.workload.workload = "SDSC-SP2";
    s.workload.trace_jobs = 2000;
    s.trainer.epochs = 2;
    s.trainer.trajectories_per_epoch = 6;
    s.trainer.jobs_per_trajectory = 128;
    s.trainer.ppo.train_iters = 20;
    s.trainer.ppo.minibatch_size = 256;
    s.trainer.eval_every = 1;
    s.trainer.eval_samples = 2;
    s.trainer.eval_sample_jobs = 256;
    s.trainer.seed = 1;
    registry.add(s);
  }
}

}  // namespace

TrainingRegistry& TrainingRegistry::instance() {
  static TrainingRegistry* registry = [] {
    auto* r = new TrainingRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

const TrainingSpec& find_training_spec(const std::string& name) {
  return TrainingRegistry::instance().get(name);
}

std::vector<std::string> training_spec_names() {
  return TrainingRegistry::instance().names();
}

}  // namespace rlbf::model
