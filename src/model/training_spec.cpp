#include "model/training_spec.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "exp/config.h"

namespace rlbf::model {

namespace {

void put(std::ostringstream& os, const char* key, const std::string& value) {
  os << key << ' ' << value << '\n';
}
void put(std::ostringstream& os, const char* key, double value) {
  os << key << ' ' << exp::format_double_exact(value) << '\n';
}
template <typename T>
  requires std::is_integral_v<T>
void put(std::ostringstream& os, const char* key, T value) {
  os << key << ' ' << value << '\n';
}

std::string dims_string(const std::vector<std::size_t>& dims) {
  std::string out;
  for (std::size_t d : dims) {
    if (!out.empty()) out += ',';
    out += std::to_string(d);
  }
  return out;
}

}  // namespace

std::string canonical_string(const TrainingSpec& spec) {
  const core::TrainerConfig& t = spec.trainer;
  std::ostringstream os;
  os << "rlbf-training-spec v1\n";
  // Trace construction (exp::build_trace inputs; seed is trainer.seed).
  put(os, "trace", exp::trace_cache_key(spec.workload));
  put(os, "seed", t.seed);
  // Algorithm. Enum-valued knobs render as their underlying integers;
  // reordering those enums is a format change, like renaming a field.
  put(os, "algorithm", spec.algorithm);
  // Trainer protocol.
  put(os, "base_policy", t.base_policy);
  put(os, "epochs", t.epochs);
  put(os, "trajectories_per_epoch", t.trajectories_per_epoch);
  put(os, "jobs_per_trajectory", t.jobs_per_trajectory);
  put(os, "eval_every", t.eval_every);
  put(os, "eval_samples", t.eval_samples);
  put(os, "eval_sample_jobs", t.eval_sample_jobs);
  put(os, "keep_best", t.keep_best ? 1 : 0);
  // PPO update (the non-PPO arms use their algorithm defaults, which the
  // `algorithm` line above already versions).
  put(os, "ppo.gamma", t.ppo.gamma);
  put(os, "ppo.lambda", t.ppo.lambda);
  put(os, "ppo.clip_ratio", t.ppo.clip_ratio);
  put(os, "ppo.policy_lr", t.ppo.policy_lr);
  put(os, "ppo.value_lr", t.ppo.value_lr);
  put(os, "ppo.train_iters", t.ppo.train_iters);
  put(os, "ppo.minibatch_size", t.ppo.minibatch_size);
  put(os, "ppo.entropy_coef", t.ppo.entropy_coef);
  put(os, "ppo.target_kl", t.ppo.target_kl);
  put(os, "ppo.max_grad_norm", t.ppo.max_grad_norm);
  put(os, "ppo.normalize_advantages", t.ppo.normalize_advantages ? 1 : 0);
  put(os, "ppo.grad_shards", t.ppo.grad_shards);
  // Environment / reward shaping.
  put(os, "env.delay_penalty", t.env.delay_penalty);
  put(os, "env.delay_rule", static_cast<int>(t.env.delay_rule));
  put(os, "env.objective", static_cast<int>(t.env.objective));
  put(os, "env.selection", static_cast<int>(t.env.selection));
  put(os, "env.epsilon", t.env.epsilon);
  put(os, "env.sample_actions", t.env.sample_actions ? 1 : 0);
  // Agent architecture.
  put(os, "agent.kernel_policy", t.agent.kernel_policy ? 1 : 0);
  put(os, "agent.obs.max_obsv_size", t.agent.obs.max_obsv_size);
  put(os, "agent.obs.value_obsv_size", t.agent.obs.value_obsv_size);
  put(os, "agent.obs.pad_policy_obs", t.agent.obs.pad_policy_obs ? 1 : 0);
  put(os, "agent.obs.mask_inadmissible", t.agent.obs.mask_inadmissible ? 1 : 0);
  put(os, "agent.obs.stop_action", t.agent.obs.stop_action ? 1 : 0);
  put(os, "agent.obs.feature_mask", t.agent.obs.feature_mask);
  put(os, "agent.net.policy_hidden", dims_string(t.agent.net.policy_hidden));
  put(os, "agent.net.value_hidden", dims_string(t.agent.net.value_hidden));
  put(os, "agent.net.activation", static_cast<int>(t.agent.net.activation));
  put(os, "agent.net.policy_output_scale", t.agent.net.policy_output_scale);
  // Non-PPO hyperparameter blocks render only under their own algorithm:
  // a PPO spec does not depend on them, so they must not fork its
  // content address (and v1 PPO fingerprints stay valid).
  if (spec.algorithm == "dqn") {
    const rl::DqnConfig& d = spec.dqn;
    put(os, "dqn.gamma", d.gamma);
    put(os, "dqn.lr", d.lr);
    put(os, "dqn.batch_size", d.batch_size);
    put(os, "dqn.updates_per_epoch", d.updates_per_epoch);
    put(os, "dqn.target_sync_every", d.target_sync_every);
    put(os, "dqn.replay_capacity", d.replay_capacity);
    put(os, "dqn.min_replay", d.min_replay);
    put(os, "dqn.double_dqn", d.double_dqn ? 1 : 0);
    put(os, "dqn.huber_delta", d.huber_delta);
    put(os, "dqn.max_grad_norm", d.max_grad_norm);
    put(os, "dqn.epsilon_start", d.epsilon_start);
    put(os, "dqn.epsilon_end", d.epsilon_end);
    put(os, "dqn.epsilon_decay_epochs", d.epsilon_decay_epochs);
  } else if (spec.algorithm == "reinforce") {
    const rl::ReinforceConfig& r = spec.reinforce;
    put(os, "reinforce.gamma", r.gamma);
    put(os, "reinforce.lambda", r.lambda);
    put(os, "reinforce.policy_lr", r.policy_lr);
    put(os, "reinforce.value_lr", r.value_lr);
    put(os, "reinforce.use_baseline", r.use_baseline ? 1 : 0);
    put(os, "reinforce.value_iters", r.value_iters);
    put(os, "reinforce.minibatch_size", r.minibatch_size);
    put(os, "reinforce.entropy_coef", r.entropy_coef);
    put(os, "reinforce.max_grad_norm", r.max_grad_norm);
    put(os, "reinforce.normalize_weights", r.normalize_weights ? 1 : 0);
  }
  // Warm-start reference: rendered only when set, so cold-start specs
  // keep their v1 fingerprints.
  if (!spec.init_agent.empty()) put(os, "init_agent", spec.init_agent);
  return os.str();
}

std::string fnv1a_hex(const std::string& text) {
  // FNV-1a 64: tiny, well-distributed, and trivially reproducible in any
  // language — the point is a stable content address, not cryptography.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string fingerprint(const TrainingSpec& spec) {
  return fnv1a_hex(canonical_string(spec));
}

std::string trace_fingerprint(const swf::Trace& trace) {
  std::ostringstream os;
  os << trace.name() << ' ' << trace.machine_procs() << ' ' << trace.size()
     << '\n';
  for (const swf::Job& job : trace.jobs()) {
    // The fields the simulator and observation builder actually read.
    os << job.submit_time << ' ' << job.run_time << ' ' << job.requested_time
       << ' ' << job.requested_procs << ' ' << job.used_procs << ' '
       << job.user_id << '\n';
  }
  return fnv1a_hex(os.str());
}

void TrainingRegistry::add(TrainingSpec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("training spec name must be non-empty");
  }
  if (contains(spec.name)) {
    throw std::invalid_argument("duplicate training spec name: " + spec.name);
  }
  specs_.push_back(std::move(spec));
}

bool TrainingRegistry::contains(const std::string& name) const {
  return std::any_of(specs_.begin(), specs_.end(),
                     [&](const TrainingSpec& s) { return s.name == name; });
}

const TrainingSpec& TrainingRegistry::get(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return spec;
  }
  std::string known;
  for (const auto& spec : specs_) {
    known += (known.empty() ? "" : ", ") + spec.name;
  }
  throw std::invalid_argument("unknown training spec '" + name +
                              "' (known: " + known + ")");
}

std::vector<std::string> TrainingRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(spec.name);
  return out;
}

namespace {

/// The paper's training protocol (§4.1.1): 100 trajectories x 256 jobs
/// per epoch, 80 PPO iterations at lr 1e-3.
TrainingSpec paper_spec(std::string name, std::string description,
                        const std::string& workload,
                        const std::string& base_policy) {
  TrainingSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.workload.workload = workload;
  spec.workload.trace_jobs = 10000;
  spec.trainer.base_policy = base_policy;
  spec.trainer.epochs = 50;
  spec.trainer.trajectories_per_epoch = 100;
  spec.trainer.jobs_per_trajectory = 256;
  spec.trainer.ppo.train_iters = 80;
  spec.trainer.ppo.policy_lr = 1e-3;
  spec.trainer.ppo.value_lr = 1e-3;
  spec.trainer.ppo.minibatch_size = 512;
  spec.trainer.seed = 1;
  return spec;
}

/// The bench/ ablation base: the paper's per-epoch protocol at the
/// reduced budget the ablations compare variants under (8 epochs x 50
/// trajectories — bench::trainer_config defaults with the epoch cap
/// applied). Every "abl-*" arm is this spec plus exactly the fields its
/// variant changes, so equal configurations collapse to one store entry.
TrainingSpec ablation_spec(std::string name, std::string description) {
  TrainingSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.workload.workload = "SDSC-SP2";
  spec.workload.trace_jobs = 10000;
  spec.trainer.base_policy = "FCFS";
  spec.trainer.epochs = 8;
  spec.trainer.trajectories_per_epoch = 50;
  spec.trainer.jobs_per_trajectory = 256;
  spec.trainer.ppo.train_iters = 80;
  spec.trainer.ppo.policy_lr = 1e-3;
  spec.trainer.ppo.value_lr = 1e-3;
  spec.trainer.ppo.minibatch_size = 512;
  spec.trainer.seed = 1;
  return spec;
}

/// The ablation arms behind bench/ablation_*. Kept minimal: every arm is
/// a distinct training configuration; controls that coincide with the
/// all-defaults base share the single "abl-control" arm (content
/// addressing would collapse their store entries anyway). The obsv-128
/// point, the all-features row, and the bounded-slowdown objective row
/// are all abl-control; the kernel-network control of A1 is abl-obsv-32
/// (the paper's kernel policy at the flat-comparable observation size).
void register_ablation_arms(TrainingRegistry& registry) {
  registry.add(ablation_spec(
      "abl-control",
      "Ablation control: paper defaults at the shared 8-epoch budget"));

  // A2: how the no-delay contract is enforced (delay rule x magnitude).
  const struct {
    const char* name;
    double penalty;
    core::DelayRule rule;
  } delay_arms[] = {
      {"abl-delay-est-0.5", 0.5, core::DelayRule::EstimatePenalty},
      {"abl-delay-est-2", 2.0, core::DelayRule::EstimatePenalty},
      {"abl-delay-est-10", 10.0, core::DelayRule::EstimatePenalty},
      {"abl-delay-act-0.5", 0.5, core::DelayRule::ActualDelayPenalty},
      {"abl-delay-act-2", 2.0, core::DelayRule::ActualDelayPenalty},
      {"abl-delay-mask", 0.0, core::DelayRule::HardMask},
  };
  for (const auto& arm : delay_arms) {
    auto s = ablation_spec(arm.name, "A2 delay-rule arm");
    s.trainer.env.delay_penalty = arm.penalty;
    s.trainer.env.delay_rule = arm.rule;
    registry.add(s);
  }

  // A3: MAX_OBSV_SIZE sweep (the 128 point is abl-control).
  for (const std::size_t size : {8u, 16u, 32u, 64u}) {
    auto s = ablation_spec("abl-obsv-" + std::to_string(size),
                           "A3 observation-size arm");
    s.trainer.agent.obs.max_obsv_size = size;
    s.trainer.agent.obs.value_obsv_size = std::min<std::size_t>(size, 32);
    registry.add(s);
  }

  // A1: flat MLP over the zero-padded observation (the kernel control at
  // this observation size is abl-obsv-32).
  {
    auto s = ablation_spec("abl-net-flat",
                           "A1 flat-MLP policy network over padded obs");
    s.trainer.agent.kernel_policy = false;
    s.trainer.agent.obs.pad_policy_obs = true;
    s.trainer.agent.obs.max_obsv_size = 32;
    s.trainer.agent.obs.value_obsv_size = 32;
    registry.add(s);
  }

  // A9: feature knockouts (all-features control is abl-control).
  const struct {
    const char* name;
    std::size_t bit;
  } feature_arms[] = {
      {"abl-feat-no-wait", 0},     {"abl-feat-no-reqtime", 1},
      {"abl-feat-no-procs", 2},    {"abl-feat-no-runtime", 4},
      {"abl-feat-no-slack", 5},    {"abl-feat-no-freefrac", 6},
      {"abl-feat-no-fit", 9},
  };
  for (const auto& arm : feature_arms) {
    auto s = ablation_spec(arm.name, "A9 feature-knockout arm");
    s.trainer.agent.obs.feature_mask = 0x3FFu & ~(1u << arm.bit);
    registry.add(s);
  }

  // A4: reward objective (bounded slowdown is abl-control).
  {
    auto s = ablation_spec("abl-obj-wait", "A4 average-wait-time objective");
    s.trainer.env.objective = core::RewardObjective::AvgWaitTime;
    registry.add(s);
  }
  {
    auto s = ablation_spec("abl-obj-turnaround", "A4 average-turnaround objective");
    s.trainer.env.objective = core::RewardObjective::AvgTurnaround;
    registry.add(s);
  }

  // A6: RL algorithm under identical collection (12-epoch budget,
  // per-epoch greedy evaluation for the convergence curves).
  {
    auto s = ablation_spec("abl-rl-ppo", "A6 PPO arm (paper algorithm)");
    s.trainer.epochs = 12;
    s.trainer.eval_every = 1;
    registry.add(s);
  }
  {
    auto s = ablation_spec("abl-rl-dqn", "A6 Double-DQN arm");
    s.algorithm = "dqn";
    s.trainer.epochs = 12;
    s.trainer.eval_every = 1;
    s.dqn.epsilon_decay_epochs = 6;  // half the budget, as in the bench
    registry.add(s);
  }
  {
    auto s = ablation_spec("abl-rl-reinforce", "A6 REINFORCE arm");
    s.algorithm = "reinforce";
    s.trainer.epochs = 12;
    s.trainer.eval_every = 1;
    s.reinforce.policy_lr = 3e-3;  // one gradient step per epoch needs a
                                   // faster rate than PPO's reused batches
    registry.add(s);
  }

  // A8: transfer. Source = the full-budget Lublin-1 agent; fine-tune
  // warm-starts from it on SDSC-SP2 at a quarter of the budget; scratch
  // is the same quarter budget cold.
  {
    auto s = ablation_spec("abl-transfer-source",
                           "A8 transfer source: full budget on Lublin-1");
    s.workload.workload = "Lublin-1";
    s.trainer.epochs = 60;
    registry.add(s);
  }
  {
    auto s = ablation_spec("abl-transfer-finetune",
                           "A8 fine-tune: warm start from abl-transfer-source");
    s.trainer.epochs = 15;
    s.init_agent = "abl-transfer-source";
    registry.add(s);
  }
  {
    auto s = ablation_spec("abl-transfer-scratch",
                           "A8 scratch control at the fine-tuning budget");
    s.trainer.epochs = 15;
    registry.add(s);
  }
}

void register_builtins(TrainingRegistry& registry) {
  registry.add(paper_spec("sdsc-fcfs", "Paper protocol: PPO on SDSC-SP2, FCFS base",
                          "SDSC-SP2", "FCFS"));
  registry.add(paper_spec("sdsc-sjf", "Paper protocol: PPO on SDSC-SP2, SJF base",
                          "SDSC-SP2", "SJF"));
  registry.add(paper_spec("hpc2n-fcfs", "Paper protocol: PPO on HPC2N, FCFS base",
                          "HPC2N", "FCFS"));
  registry.add(paper_spec("lublin1-fcfs",
                          "Paper protocol: PPO on synthetic Lublin-1, FCFS base",
                          "Lublin-1", "FCFS"));
  registry.add(paper_spec("lublin2-fcfs",
                          "Paper protocol: PPO on synthetic Lublin-2, FCFS base",
                          "Lublin-2", "FCFS"));
  {
    auto s = paper_spec("sdsc-fcfs-dqn",
                        "Ablation arm: DQN under the PPO data-collection protocol",
                        "SDSC-SP2", "FCFS");
    s.algorithm = "dqn";
    registry.add(s);
  }
  {
    auto s = paper_spec("sdsc-fcfs-reinforce",
                        "Ablation arm: REINFORCE (single policy-gradient step)",
                        "SDSC-SP2", "FCFS");
    s.algorithm = "reinforce";
    registry.add(s);
  }
  register_ablation_arms(registry);
  {
    TrainingSpec s;
    s.name = "sdsc-tiny";
    s.description = "CI smoke: 2 epochs x 6 tiny trajectories on 2000 SDSC jobs";
    s.workload.workload = "SDSC-SP2";
    s.workload.trace_jobs = 2000;
    s.trainer.epochs = 2;
    s.trainer.trajectories_per_epoch = 6;
    s.trainer.jobs_per_trajectory = 128;
    s.trainer.ppo.train_iters = 20;
    s.trainer.ppo.minibatch_size = 256;
    s.trainer.eval_every = 1;
    s.trainer.eval_samples = 2;
    s.trainer.eval_sample_jobs = 256;
    s.trainer.seed = 1;
    registry.add(s);
  }
}

}  // namespace

TrainingRegistry& TrainingRegistry::instance() {
  static TrainingRegistry* registry = [] {
    auto* r = new TrainingRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

const TrainingSpec& find_training_spec(const std::string& name) {
  return TrainingRegistry::instance().get(name);
}

std::vector<std::string> training_spec_names() {
  return TrainingRegistry::instance().names();
}

std::vector<std::string> ablation_arm_names() {
  std::vector<std::string> arms;
  for (const std::string& name : training_spec_names()) {
    if (name.rfind("abl-", 0) == 0) arms.push_back(name);
  }
  return arms;
}

}  // namespace rlbf::model
