// Calibrated trace presets standing in for the paper's Table-2 workloads.
//
// The two archive traces (SDSC-SP2, HPC2N) are not redistributable inside
// this repository, so we generate structurally equivalent traces with the
// Lublin-Feitelson model calibrated to the published Table-2 statistics
// (machine size, mean inter-arrival `it`, mean request time `rt`, mean
// requested processors `nt`) and add user estimates with the
// overestimation model. The two synthetic workloads (Lublin-1, Lublin-2)
// are exactly what the paper used: Lublin-model traces with different
// parameterizations, exposing actual runtimes only.
//
// Calibration: interarrival and runtime means are matched by iterative
// rescaling against a pilot batch (deterministic given the seed); the
// size mean is matched approximately by the preset's two-stage-uniform
// parameters. See DESIGN.md §3 for why this substitution preserves the
// paper's behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "swf/trace.h"
#include "workload/lublin.h"
#include "workload/overestimate.h"

namespace rlbf::workload {

/// Target statistics for a preset (the paper's Table 2 row).
struct PresetTargets {
  std::string name;
  std::int64_t machine_procs = 0;
  double mean_interarrival = 0.0;   // it, seconds
  double mean_request_time = 0.0;   // rt, seconds (requested for real-like,
                                    // actual for synthetic traces)
  double mean_requested_procs = 0.0;  // nt
  bool user_estimates = false;      // real-like traces carry RT != AR
};

/// The four Table-2 rows.
PresetTargets sdsc_sp2_targets();
PresetTargets hpc2n_targets();
PresetTargets lublin1_targets();
PresetTargets lublin2_targets();
std::vector<PresetTargets> all_targets();

/// Generate a calibrated trace of `count` jobs for the given targets.
/// Deterministic in (targets, count, seed).
swf::Trace make_preset(const PresetTargets& targets, std::size_t count,
                       std::uint64_t seed);

/// Convenience wrappers, default 10,000 jobs (the paper's evaluation
/// uses the first 10K jobs of each trace).
swf::Trace sdsc_sp2_like(std::uint64_t seed = 1, std::size_t count = 10000);
swf::Trace hpc2n_like(std::uint64_t seed = 2, std::size_t count = 10000);
swf::Trace lublin_1(std::uint64_t seed = 3, std::size_t count = 10000);
swf::Trace lublin_2(std::uint64_t seed = 4, std::size_t count = 10000);

/// All four presets in Table-2 order.
std::vector<swf::Trace> all_presets(std::uint64_t seed_base = 1,
                                    std::size_t count = 10000);

}  // namespace rlbf::workload
