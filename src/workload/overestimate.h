// User request-time (wall-time) overestimation model.
//
// Real traces such as SDSC-SP2 carry both the user-submitted Request Time
// and the Actual Runtime; the gap between them is what creates the
// paper's accuracy-vs-backfilling trade-off. Our synthetic stand-ins for
// those traces add estimates with this model, which follows the
// observations of Tsafrir et al. (TPDS'07) and Lee et al. (JSSPP'05):
//
//  * a minority of users submit (nearly) exact estimates;
//  * everyone else overestimates, and the overestimation *factor* is
//    inversely correlated with the runtime — a 1-minute job often
//    requests an hour (60x), while a 20-hour job requests 24 h (1.2x).
//    The default Additive mode models this with an exponentially
//    distributed safety pad in seconds, giving short jobs huge factors
//    and long jobs modest ones while keeping the mean request time
//    calibratable (mean request ~= mean runtime + mean pad);
//  * submitted values are "round" — users pick from a menu of common
//    wall-times (15 min, 1 h, 4 h, ...), so the estimate is the
//    smallest menu value covering the padded runtime.
//
// A Multiplicative mode (request = runtime * heavy-tailed factor) is
// kept for sensitivity studies.
#pragma once

#include <cstdint>
#include <vector>

#include "swf/trace.h"
#include "util/rng.h"

namespace rlbf::workload {

enum class OverestimateMode {
  /// request = runtime + Exp(mean_pad_seconds): factor shrinks with
  /// runtime, matching archive observations. Default.
  Additive,
  /// request = runtime * (1 + Exp(mean_factor - 1)).
  Multiplicative,
};

struct OverestimateConfig {
  OverestimateMode mode = OverestimateMode::Additive;
  /// Probability a user submits an exact estimate (rounded up to a
  /// minute), per Lee et al.'s ~10% accurate-estimator population.
  double exact_prob = 0.10;
  /// Additive mode: mean safety pad in seconds.
  double mean_pad_seconds = 2400.0;
  /// Multiplicative mode: the padding factor is 1 + Exp(mean_factor - 1).
  double mean_factor = 4.0;
  /// Hard cap on any estimate, seconds (cluster max wall-time).
  std::int64_t max_request = 7 * 24 * 3600;
  /// Snap padded estimates up to the next "round" wall-time menu value.
  bool round_to_menu = true;
};

class OverestimateModel {
 public:
  explicit OverestimateModel(OverestimateConfig config);

  /// The round wall-time menu (seconds, ascending).
  static const std::vector<std::int64_t>& menu();

  /// Sample a request time for a job with the given actual runtime.
  /// Guaranteed >= run_time (jobs are never killed for overrunning in
  /// our traces) and <= max(max_request, run_time).
  std::int64_t sample_request(std::int64_t run_time, util::Rng& rng) const;

  /// Fill requested_time for every job in the trace (in place).
  void apply(swf::Trace& trace, util::Rng& rng) const;

  const OverestimateConfig& config() const { return config_; }

 private:
  OverestimateConfig config_;
};

}  // namespace rlbf::workload
