#include "workload/lublin.h"

#include <algorithm>
#include <cmath>

namespace rlbf::workload {

std::array<double, 48> daily_cycle_weights(double strength) {
  strength = std::clamp(strength, 0.0, 1.0);
  std::array<double, 48> raw{};
  for (std::size_t b = 0; b < raw.size(); ++b) {
    const double hour = static_cast<double>(b) / 2.0;
    // Work-hours hump centered ~13:30 plus a smaller evening shoulder,
    // over a nocturnal floor. Shape follows the JPDC daily-cycle figure.
    const double day = std::exp(-((hour - 13.5) * (hour - 13.5)) / (2.0 * 4.0 * 4.0));
    const double evening = 0.35 * std::exp(-((hour - 20.5) * (hour - 20.5)) / (2.0 * 2.0 * 2.0));
    raw[b] = 0.25 + 1.6 * day + evening;
  }
  // Blend toward flat by `strength`, then normalize so the *harmonic*
  // mean is 1: gaps are sampled with mean proportional to 1/weight, so
  // this keeps the configured mean inter-arrival approximately invariant.
  double inv_sum = 0.0;
  std::array<double, 48> w{};
  for (std::size_t b = 0; b < raw.size(); ++b) {
    w[b] = (1.0 - strength) + strength * raw[b];
    inv_sum += 1.0 / w[b];
  }
  const double inv_mean = inv_sum / static_cast<double>(w.size());
  for (auto& x : w) x *= inv_mean;
  return w;
}

LublinGenerator::LublinGenerator(LublinConfig config)
    : config_(config),
      cycle_(daily_cycle_weights(config.daily_cycle_strength)),
      uhi_effective_(config.uhi > 0.0
                         ? config.uhi
                         : std::log2(static_cast<double>(config.machine_procs))) {}

std::int64_t LublinGenerator::sample_size(util::Rng& rng) const {
  if (rng.bernoulli(config_.serial_prob)) return 1;
  // Two-stage uniform in log2 space.
  const bool low_stage = rng.bernoulli(config_.uprob);
  const double lo = low_stage ? config_.ulow : config_.umed;
  const double hi = low_stage ? config_.umed : uhi_effective_;
  const double l2 = rng.uniform(lo, std::max(lo, hi));
  double size;
  if (rng.bernoulli(config_.pow2_prob)) {
    size = std::exp2(std::round(l2));  // snap to a power of two
  } else {
    size = std::round(std::exp2(l2));
  }
  return std::clamp<std::int64_t>(static_cast<std::int64_t>(size), 1,
                                  config_.machine_procs);
}

std::int64_t LublinGenerator::sample_runtime(std::int64_t size, util::Rng& rng) const {
  // Mixing probability of the short-job component depends on size; the
  // hyper-gamma is fitted to ln(runtime), so exponentiate the draw.
  const double p =
      std::clamp(config_.pa * static_cast<double>(size) + config_.pb, 0.0, 1.0);
  const double log_rt = rng.bernoulli(p) ? rng.gamma(config_.a1, config_.b1)
                                         : rng.gamma(config_.a2, config_.b2);
  const double rt = std::exp(log_rt) * config_.runtime_scale;
  const auto rounded = static_cast<std::int64_t>(std::llround(rt));
  return std::clamp(rounded, config_.min_runtime, config_.max_runtime);
}

double LublinGenerator::sample_gap(double second_of_day, util::Rng& rng) const {
  const auto bucket = static_cast<std::size_t>(
      std::fmod(std::max(second_of_day, 0.0), 86400.0) / 1800.0);
  const double weight = cycle_[std::min<std::size_t>(bucket, cycle_.size() - 1)];
  const double mean_gap = config_.mean_interarrival / weight;
  const double shape = config_.gap_gamma_shape;
  return rng.gamma(shape, mean_gap / shape);
}

swf::Trace LublinGenerator::generate(const std::string& name, std::size_t count,
                                     util::Rng& rng) const {
  std::vector<swf::Job> jobs;
  jobs.reserve(count);
  double t = 8.0 * 3600.0;  // start in the morning ramp-up
  for (std::size_t i = 0; i < count; ++i) {
    t += sample_gap(t, rng);
    swf::Job j;
    j.id = static_cast<std::int64_t>(i) + 1;
    j.submit_time = static_cast<std::int64_t>(std::llround(t));
    const std::int64_t size = sample_size(rng);
    j.requested_procs = size;
    j.used_procs = size;
    j.run_time = sample_runtime(size, rng);
    j.requested_time = swf::kUnknown;  // synthetic traces expose AR only
    j.status = 1;
    j.user_id = rng.uniform_int(1, 64);
    j.group_id = rng.uniform_int(1, 8);
    jobs.push_back(j);
  }
  swf::Trace trace(name, config_.machine_procs, std::move(jobs));
  trace.normalize();
  return trace;
}

}  // namespace rlbf::workload
