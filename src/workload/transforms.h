// Trace transformations for sensitivity studies: compress/stretch the
// arrival process to change offered load, slice by time window, and
// filter by job shape. All return new traces; inputs are untouched.
#pragma once

#include <cstdint>
#include <functional>

#include "swf/trace.h"

namespace rlbf::workload {

/// Scale offered load by `factor` by dividing every inter-arrival gap by
/// it (factor 2 = twice the arrival rate = twice the load; factor 0.5 =
/// half). Job bodies are unchanged. Requires factor > 0.
swf::Trace scale_load(const swf::Trace& trace, double factor);

/// Jobs submitted in [start_second, end_second), submit times re-based
/// to 0. Requires start < end.
swf::Trace time_window(const swf::Trace& trace, std::int64_t start_second,
                       std::int64_t end_second);

/// Keep jobs satisfying `keep`; submit times are preserved (not re-based)
/// so inter-arrival structure of the survivors is intact.
swf::Trace filter_jobs(const swf::Trace& trace,
                       const std::function<bool(const swf::Job&)>& keep);

/// Offered load: mean(run * procs) / (mean interarrival * machine size).
/// 0 for traces with fewer than two jobs.
double offered_load(const swf::Trace& trace);

/// Parameters for flurry scrubbing (see remove_flurries).
struct FlurryParams {
  /// Sliding window width in seconds.
  std::int64_t window_seconds = 3600;
  /// A user submitting more than this many jobs within one window is
  /// flagged as a flurry; the archive's cleaned traces use thresholds of
  /// this order for single-user bursts.
  std::size_t max_jobs_per_window = 50;
};

/// Statistics of one scrub, returned alongside the cleaned trace.
struct FlurryReport {
  std::size_t removed_jobs = 0;
  std::size_t flagged_users = 0;
};

/// Remove workload flurries — huge bursts of near-identical submissions
/// from a single user that the Parallel Workloads Archive's experience
/// paper (the paper's reference [10]) identifies as non-representative
/// anomalies which can dominate aggregate metrics like the mean bounded
/// slowdown. A job is removed when more than `max_jobs_per_window` jobs
/// of the same user fall inside any `window_seconds`-wide window
/// containing it. Survivor submit times are preserved. `report` (if
/// non-null) receives what was cut.
swf::Trace remove_flurries(const swf::Trace& trace, const FlurryParams& params = {},
                           FlurryReport* report = nullptr);

/// Parameters for heavy-tail runtime injection (see inject_heavy_tail).
struct HeavyTailParams {
  /// Per-job probability of being stretched.
  double prob = 0.05;
  /// Pareto tail index of the stretch factor (smaller = heavier tail).
  /// Must be > 0; the factor is drawn as (1-u)^(-1/alpha) >= 1.
  double alpha = 1.5;
  /// Cap on any stretched runtime, seconds.
  std::int64_t max_run_seconds = 7 * 24 * 3600;
};

/// Stretch a random subset of actual runtimes by Pareto-distributed
/// factors, leaving the recorded request times untouched. This injects
/// the heavy right tail real clusters exhibit AND creates jobs whose
/// actual runtime exceeds their request — the overrun population that the
/// paper's §2.1.2 kill-on-overrun contract (and our
/// SimulationOptions::kill_exceeding_request) exists for. Deterministic
/// in (trace, params, seed).
swf::Trace inject_heavy_tail(const swf::Trace& trace, const HeavyTailParams& params,
                             std::uint64_t seed);

/// Inject a synthetic flurry: `count` copies of a 1-processor,
/// `run_seconds`-long job from `user_id`, submitted `gap_seconds` apart
/// starting at `start_second`. The stress-test generator for
/// remove_flurries and for robustness studies of trained agents under
/// anomalous bursts.
swf::Trace inject_flurry(const swf::Trace& trace, std::int64_t user_id,
                         std::int64_t start_second, std::size_t count,
                         std::int64_t gap_seconds = 5,
                         std::int64_t run_seconds = 60);

}  // namespace rlbf::workload
