#include "workload/transforms.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.h"

namespace rlbf::workload {

swf::Trace scale_load(const swf::Trace& trace, double factor) {
  if (factor <= 0.0) throw std::invalid_argument("scale_load: factor <= 0");
  std::vector<swf::Job> jobs = trace.jobs();
  // Rescale the ORIGINAL gaps, accumulating in double to avoid drift.
  const std::vector<swf::Job>& original = trace.jobs();
  double t = jobs.empty() ? 0.0 : static_cast<double>(original.front().submit_time);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    const double gap = static_cast<double>(original[i].submit_time -
                                           original[i - 1].submit_time);
    t += gap / factor;
    jobs[i].submit_time = static_cast<std::int64_t>(std::llround(t));
  }
  swf::Trace out(trace.name() + "-x" + std::to_string(factor), trace.machine_procs(),
                 std::move(jobs));
  out.normalize();
  return out;
}

swf::Trace time_window(const swf::Trace& trace, std::int64_t start_second,
                       std::int64_t end_second) {
  if (start_second >= end_second) {
    throw std::invalid_argument("time_window: start >= end");
  }
  std::vector<swf::Job> jobs;
  for (const auto& j : trace.jobs()) {
    if (j.submit_time >= start_second && j.submit_time < end_second) {
      swf::Job copy = j;
      copy.submit_time -= start_second;
      jobs.push_back(copy);
    }
  }
  swf::Trace out(trace.name() + "-window", trace.machine_procs(), std::move(jobs));
  out.normalize();
  return out;
}

swf::Trace filter_jobs(const swf::Trace& trace,
                       const std::function<bool(const swf::Job&)>& keep) {
  std::vector<swf::Job> jobs;
  for (const auto& j : trace.jobs()) {
    if (keep(j)) jobs.push_back(j);
  }
  swf::Trace out(trace.name() + "-filtered", trace.machine_procs(), std::move(jobs));
  out.normalize();
  return out;
}

swf::Trace remove_flurries(const swf::Trace& trace, const FlurryParams& params,
                           FlurryReport* report) {
  if (params.window_seconds <= 0) {
    throw std::invalid_argument("remove_flurries: window must be positive");
  }
  if (params.max_jobs_per_window == 0) {
    throw std::invalid_argument("remove_flurries: threshold must be >= 1");
  }
  // Per user, submit times are already in trace order (normalize() sorts
  // by submit). Two-pointer sliding window over each user's submissions:
  // whenever a window holds more than the threshold, every job in it is
  // flagged.
  std::unordered_map<std::int64_t, std::vector<std::size_t>> by_user;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    by_user[trace[i].user_id].push_back(i);
  }
  std::vector<bool> flagged(trace.size(), false);
  std::size_t flagged_users = 0;
  for (const auto& [user, indices] : by_user) {
    bool user_flagged = false;
    std::size_t lo = 0;
    for (std::size_t hi = 0; hi < indices.size(); ++hi) {
      while (trace[indices[hi]].submit_time - trace[indices[lo]].submit_time >
             params.window_seconds) {
        ++lo;
      }
      if (hi - lo + 1 > params.max_jobs_per_window) {
        user_flagged = true;
        for (std::size_t k = lo; k <= hi; ++k) flagged[indices[k]] = true;
      }
    }
    if (user_flagged) ++flagged_users;
  }

  std::vector<swf::Job> jobs;
  jobs.reserve(trace.size());
  std::size_t removed = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (flagged[i]) {
      ++removed;
    } else {
      jobs.push_back(trace[i]);
    }
  }
  if (report != nullptr) {
    report->removed_jobs = removed;
    report->flagged_users = flagged_users;
  }
  swf::Trace out(trace.name() + "-scrubbed", trace.machine_procs(), std::move(jobs));
  out.normalize();
  return out;
}

swf::Trace inject_heavy_tail(const swf::Trace& trace, const HeavyTailParams& params,
                             std::uint64_t seed) {
  if (params.prob < 0.0 || params.prob > 1.0) {
    throw std::invalid_argument("inject_heavy_tail: prob outside [0, 1]");
  }
  if (params.alpha <= 0.0) {
    throw std::invalid_argument("inject_heavy_tail: alpha <= 0");
  }
  util::Rng rng(seed);
  std::vector<swf::Job> jobs = trace.jobs();
  for (auto& j : jobs) {
    // One bernoulli + one uniform per job regardless of the outcome, so a
    // job's fate depends only on its position, not on earlier draws' path.
    const bool stretch = rng.bernoulli(params.prob);
    const double u = rng.uniform();
    if (!stretch || j.run_time <= 0) continue;
    const double factor = std::pow(1.0 - u, -1.0 / params.alpha);
    // Clamp in double space: a heavy enough tail (small alpha) can push
    // the stretched value past what llround can represent. The max()
    // keeps jobs already above the cap at their original runtime — this
    // transform only ever stretches.
    const double stretched =
        std::min(static_cast<double>(j.run_time) * factor,
                 static_cast<double>(params.max_run_seconds));
    j.run_time =
        std::max(j.run_time, static_cast<std::int64_t>(std::llround(stretched)));
  }
  swf::Trace out(trace.name() + "-heavytail", trace.machine_procs(), std::move(jobs));
  out.normalize();
  return out;
}

swf::Trace inject_flurry(const swf::Trace& trace, std::int64_t user_id,
                         std::int64_t start_second, std::size_t count,
                         std::int64_t gap_seconds, std::int64_t run_seconds) {
  if (gap_seconds < 0 || run_seconds <= 0) {
    throw std::invalid_argument("inject_flurry: bad gap/run");
  }
  std::vector<swf::Job> jobs = trace.jobs();
  jobs.reserve(jobs.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    swf::Job j;
    j.id = static_cast<std::int64_t>(trace.size() + i + 1);
    j.user_id = user_id;
    j.submit_time = start_second + static_cast<std::int64_t>(i) * gap_seconds;
    j.run_time = run_seconds;
    j.requested_time = run_seconds * 2;  // typical overestimate
    j.requested_procs = 1;
    jobs.push_back(j);
  }
  swf::Trace out(trace.name() + "-flurry", trace.machine_procs(), std::move(jobs));
  out.normalize();
  return out;
}

double offered_load(const swf::Trace& trace) {
  if (trace.size() < 2) return 0.0;
  double work = 0.0;
  for (const auto& j : trace.jobs()) {
    work += static_cast<double>(j.run_time) * static_cast<double>(j.procs());
  }
  work /= static_cast<double>(trace.size());
  const double it = trace.stats().mean_interarrival;
  if (it <= 0.0) return 0.0;
  return work / (it * static_cast<double>(trace.machine_procs()));
}

}  // namespace rlbf::workload
