// Implementation of the Lublin-Feitelson rigid-job workload model
// (Lublin & Feitelson, "The workload on parallel supercomputers:
// modeling the characteristics of rigid jobs", JPDC 2003).
//
// The model has three coupled components, all reproduced here with the
// published default parameters (matching the authors' m_lublin99.c):
//
//  1. Job size: a job is serial with probability `serial_prob`;
//     otherwise log2(size) is drawn from a two-stage uniform
//     distribution over [ulow, umed] (w.p. uprob) or [umed, uhi],
//     and the size is snapped to a power of two with probability
//     `pow2_prob`.
//  2. Runtime: hyper-gamma — a mixture of Gamma(a1,b1) (short jobs)
//     and Gamma(a2,b2) (long jobs); the mixing probability of the
//     *first* component depends linearly on the job size,
//     p = pa * size + pb, producing the observed correlation between
//     wide jobs and long runtimes.
//  3. Arrivals: gamma-distributed inter-arrival gaps modulated by a
//     daily cycle — the day is divided into 48 half-hour buckets with
//     empirical activity weights (quiet at night, peaked during work
//     hours), and the instantaneous arrival rate is proportional to
//     the weight of the current bucket.
//
// Deviation from the original code: the original generates arrivals by
// drawing per-bucket job *counts*; we draw per-job *gaps* whose rate is
// the bucket weight. Both yield the same stationary daily profile; the
// gap formulation makes the mean inter-arrival directly calibratable,
// which the presets (Table 2 stand-ins) rely on. See DESIGN.md §3.
#pragma once

#include <array>
#include <cstdint>

#include "swf/trace.h"
#include "util/rng.h"

namespace rlbf::workload {

struct LublinConfig {
  std::int64_t machine_procs = 256;

  // --- job size ---
  double serial_prob = 0.244;  // probability the job uses one processor
  double pow2_prob = 0.576;    // probability the size snaps to a power of 2
  double ulow = 0.8;           // log2 lower bound for parallel sizes
  double umed = 4.5;           // log2 break-point of the two-stage uniform
  // log2 upper bound; <= 0 means "log2(machine_procs)" (the paper's UHI).
  double uhi = -1.0;
  double uprob = 0.86;         // probability of the low stage [ulow, umed]

  // --- runtime (hyper-gamma, seconds) ---
  double a1 = 4.2;   // shape, short-job gamma
  double b1 = 0.94;  // scale, short-job gamma (seconds are exp-scaled below)
  double a2 = 312.0; // shape, long-job gamma
  double b2 = 0.03;  // scale, long-job gamma
  double pa = -0.0054;  // size->mixing slope
  double pb = 0.78;     // size->mixing intercept
  // The JPDC model samples log-ish magnitudes; runtimes are capped here.
  std::int64_t min_runtime = 1;
  std::int64_t max_runtime = 7 * 24 * 3600;  // one week

  // --- arrivals ---
  // Mean inter-arrival gap in seconds the generated trace should have
  // (before daily-cycle modulation, which preserves the mean by
  // normalization). This is the Table-2 "it" knob.
  double mean_interarrival = 771.0;
  // Gamma shape for gap variability; 1.0 = exponential. The JPDC fits
  // are over-dispersed (bursty), shape < 1.
  double gap_gamma_shape = 0.45;
  // Strength of the daily cycle in [0, 1]; 0 disables modulation.
  double daily_cycle_strength = 0.8;

  // Global multiplicative runtime scale applied after sampling, used by
  // the presets to hit a target mean runtime. 1.0 = raw model output.
  double runtime_scale = 1.0;
};

/// The 48 half-hour daily activity weights (normalized to mean 1).
/// Smooth double-hump work-hours profile fitted to the JPDC figures.
std::array<double, 48> daily_cycle_weights(double strength);

class LublinGenerator {
 public:
  explicit LublinGenerator(LublinConfig config);

  const LublinConfig& config() const { return config_; }

  /// Sample one job size in [1, machine_procs].
  std::int64_t sample_size(util::Rng& rng) const;

  /// Sample one runtime (seconds) for a job of the given size.
  std::int64_t sample_runtime(std::int64_t size, util::Rng& rng) const;

  /// Sample the gap to the next arrival given the current simulated
  /// second-of-day (for cycle modulation).
  double sample_gap(double second_of_day, util::Rng& rng) const;

  /// Generate a full trace of `count` jobs named `name`. Jobs carry
  /// actual runtimes only (requested_time == kUnknown), matching the
  /// paper's synthetic traces; run it through an OverestimateModel to
  /// add user estimates.
  swf::Trace generate(const std::string& name, std::size_t count, util::Rng& rng) const;

 private:
  LublinConfig config_;
  std::array<double, 48> cycle_;
  double uhi_effective_;
};

}  // namespace rlbf::workload
