#include "workload/overestimate.h"

#include <algorithm>
#include <cmath>

namespace rlbf::workload {

OverestimateModel::OverestimateModel(OverestimateConfig config) : config_(config) {}

const std::vector<std::int64_t>& OverestimateModel::menu() {
  // Common wall-time menu values observed in archive traces, seconds.
  static const std::vector<std::int64_t> kMenu = {
      60,        300,       600,       900,       1800,      3600,
      2 * 3600,  4 * 3600,  6 * 3600,  8 * 3600,  12 * 3600, 18 * 3600,
      24 * 3600, 36 * 3600, 48 * 3600, 72 * 3600, 96 * 3600, 7 * 24 * 3600};
  return kMenu;
}

std::int64_t OverestimateModel::sample_request(std::int64_t run_time,
                                               util::Rng& rng) const {
  run_time = std::max<std::int64_t>(run_time, 1);
  if (rng.bernoulli(config_.exact_prob)) {
    // Exact estimator: round up to a whole minute.
    const std::int64_t minutes = (run_time + 59) / 60;
    return std::max<std::int64_t>(minutes * 60, run_time);
  }
  double padded;
  if (config_.mode == OverestimateMode::Additive) {
    const double pad = rng.exponential(1.0 / std::max(config_.mean_pad_seconds, 1e-9));
    padded = static_cast<double>(run_time) + pad;
  } else {
    const double mean_pad = std::max(config_.mean_factor - 1.0, 1e-9);
    const double factor = 1.0 + rng.exponential(1.0 / mean_pad);
    padded = static_cast<double>(run_time) * factor;
  }
  padded = std::min(padded, static_cast<double>(config_.max_request));
  auto request = static_cast<std::int64_t>(std::ceil(padded));
  if (config_.round_to_menu) {
    const auto& m = menu();
    const auto it = std::lower_bound(m.begin(), m.end(), request);
    if (it != m.end()) request = *it;
  }
  request = std::min(request, config_.max_request);
  return std::max(request, run_time);  // estimates never undercut AR
}

void OverestimateModel::apply(swf::Trace& trace, util::Rng& rng) const {
  for (auto& job : trace.mutable_jobs()) {
    job.requested_time = sample_request(job.run_time, rng);
  }
}

}  // namespace rlbf::workload
