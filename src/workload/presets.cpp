#include "workload/presets.h"

#include <cmath>

namespace rlbf::workload {

namespace {

/// Base Lublin parameters tuned per preset so the mean requested-processor
/// count lands near the Table-2 `nt` target (analytic two-stage-uniform
/// means; pow2 snapping perturbs them slightly, which is acceptable).
LublinConfig base_config(const PresetTargets& t) {
  LublinConfig cfg;
  cfg.machine_procs = t.machine_procs;
  cfg.mean_interarrival = t.mean_interarrival;
  if (t.name == "SDSC-SP2") {
    cfg.serial_prob = 0.30;
    cfg.umed = 3.8;
    cfg.uprob = 0.80;
  } else if (t.name == "HPC2N") {
    cfg.serial_prob = 0.42;
    cfg.umed = 3.0;
    cfg.uprob = 0.92;
  } else if (t.name == "Lublin-1") {
    cfg.serial_prob = 0.20;
    cfg.umed = 5.0;
    cfg.uprob = 0.82;
  } else if (t.name == "Lublin-2") {
    cfg.serial_prob = 0.08;
    cfg.umed = 6.2;
    cfg.uprob = 0.82;
  }
  return cfg;
}

OverestimateConfig overestimate_config(const PresetTargets& t) {
  OverestimateConfig cfg;
  // Additive pads keep the runtime mean (and thus the offered load)
  // realistic while the calibration pins the *request* mean to Table 2:
  // mean request ~= mean runtime + pad, so runtime lands near
  // rt_target - pad. Pads are sized so both traces stay busy clusters.
  cfg.mean_pad_seconds = (t.name == "HPC2N") ? 3600.0 : 2200.0;
  return cfg;
}

}  // namespace

PresetTargets sdsc_sp2_targets() {
  return {"SDSC-SP2", 128, 1055.0, 6687.0, 11.0, true};
}
PresetTargets hpc2n_targets() { return {"HPC2N", 240, 538.0, 17024.0, 6.0, true}; }
PresetTargets lublin1_targets() { return {"Lublin-1", 256, 771.0, 4862.0, 22.0, false}; }
PresetTargets lublin2_targets() { return {"Lublin-2", 256, 460.0, 1695.0, 39.0, false}; }

std::vector<PresetTargets> all_targets() {
  return {sdsc_sp2_targets(), hpc2n_targets(), lublin1_targets(), lublin2_targets()};
}

swf::Trace make_preset(const PresetTargets& targets, std::size_t count,
                       std::uint64_t seed) {
  LublinConfig cfg = base_config(targets);
  const OverestimateConfig ocfg = overestimate_config(targets);

  // Iterative mean calibration against deterministic pilot batches. The
  // interarrival response is exactly linear; the runtime response is
  // multiplicative but perturbed by menu rounding and caps, so a few
  // fixed-point iterations converge tightly.
  constexpr std::size_t kPilotJobs = 6000;
  constexpr int kIterations = 3;
  for (int iter = 0; iter < kIterations; ++iter) {
    const LublinGenerator gen(cfg);
    util::Rng pilot_rng(seed ^ 0xc0ffee123456789ull);
    swf::Trace pilot = gen.generate("pilot", kPilotJobs, pilot_rng);
    if (targets.user_estimates) {
      OverestimateModel(ocfg).apply(pilot, pilot_rng);
    }
    const swf::TraceStats s = pilot.stats();
    const double achieved_rt =
        targets.user_estimates ? s.mean_request_time : s.mean_run_time;
    if (achieved_rt > 0.0) {
      cfg.runtime_scale *= targets.mean_request_time / achieved_rt;
    }
    if (s.mean_interarrival > 0.0) {
      cfg.mean_interarrival *= targets.mean_interarrival / s.mean_interarrival;
    }
  }

  const LublinGenerator gen(cfg);
  util::Rng rng(seed);
  swf::Trace trace = gen.generate(targets.name, count, rng);
  if (targets.user_estimates) {
    OverestimateModel(ocfg).apply(trace, rng);
  }
  trace.validate();
  return trace;
}

swf::Trace sdsc_sp2_like(std::uint64_t seed, std::size_t count) {
  return make_preset(sdsc_sp2_targets(), count, seed);
}
swf::Trace hpc2n_like(std::uint64_t seed, std::size_t count) {
  return make_preset(hpc2n_targets(), count, seed);
}
swf::Trace lublin_1(std::uint64_t seed, std::size_t count) {
  return make_preset(lublin1_targets(), count, seed);
}
swf::Trace lublin_2(std::uint64_t seed, std::size_t count) {
  return make_preset(lublin2_targets(), count, seed);
}

std::vector<swf::Trace> all_presets(std::uint64_t seed_base, std::size_t count) {
  std::vector<swf::Trace> traces;
  const auto targets = all_targets();
  traces.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    traces.push_back(make_preset(targets[i], count, seed_base + i));
  }
  return traces;
}

}  // namespace rlbf::workload
