// Batch job model following the Standard Workload Format (SWF v2,
// Feitelson/Tsafrir/Krakov). A Job carries the static attributes read
// from a trace; scheduling state (start time, etc.) lives in the
// simulator, not here, so the same Trace can be scheduled many times.
#pragma once

#include <cstdint>
#include <string>

namespace rlbf::swf {

/// Times are seconds; SWF uses -1 for "unknown".
inline constexpr std::int64_t kUnknown = -1;

/// One batch job. Field order/names mirror the 18 SWF columns; the
/// commonly used ones get first-class accessors with invariants.
struct Job {
  std::int64_t id = 0;                 // 1: job number
  std::int64_t submit_time = 0;        // 2: seconds since trace start
  std::int64_t wait_time = kUnknown;   // 3: as recorded in the trace (unused by sim)
  std::int64_t run_time = kUnknown;    // 4: actual runtime (AR)
  std::int64_t used_procs = kUnknown;  // 5: allocated processors
  double avg_cpu_time = -1.0;          // 6
  std::int64_t used_memory = kUnknown; // 7
  std::int64_t requested_procs = kUnknown;   // 8
  std::int64_t requested_time = kUnknown;    // 9: user estimate (RT / wall time)
  std::int64_t requested_memory = kUnknown;  // 10
  int status = 1;                      // 11: 1 = completed
  std::int64_t user_id = kUnknown;     // 12
  std::int64_t group_id = kUnknown;    // 13
  std::int64_t executable = kUnknown;  // 14
  std::int64_t queue = kUnknown;       // 15
  std::int64_t partition = kUnknown;   // 16
  std::int64_t preceding_job = kUnknown;     // 17
  std::int64_t think_time = kUnknown;        // 18

  /// Processors the scheduler must allocate: requested if present,
  /// otherwise the used count. Always >= 1 for a valid job.
  std::int64_t procs() const {
    return requested_procs > 0 ? requested_procs : used_procs;
  }

  /// The user's runtime estimate the scheduler sees at submit time.
  /// Falls back to the actual runtime when the trace has no estimates
  /// (e.g. synthetic Lublin traces expose only AR).
  std::int64_t request_time() const {
    return requested_time > 0 ? requested_time : run_time;
  }

  /// True if the job is schedulable: positive size and actual runtime
  /// known and non-negative.
  bool valid() const { return procs() > 0 && run_time >= 0; }
};

/// Render the 18 SWF columns as one line (no trailing newline).
std::string to_swf_line(const Job& job);

}  // namespace rlbf::swf
