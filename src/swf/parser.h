// SWF v2 reader. Handles the Parallel Workloads Archive conventions:
// ';'-prefixed header comments (MaxProcs, MaxNodes, UnixStartTime, ...),
// 18 whitespace-separated fields per job line, -1 for unknown values.
//
// Real archive files (SDSC-SP2, HPC2N, ...) parse unchanged; the test
// suite exercises the format with embedded fixtures.
#pragma once

#include <istream>
#include <map>
#include <string>

#include "swf/trace.h"

namespace rlbf::swf {

struct ParseOptions {
  /// Drop jobs with unknown runtime/size instead of failing (archive files
  /// contain cancelled jobs recorded with -1 fields). Default true.
  bool skip_invalid_jobs = true;
  /// Re-sort by submit time and renumber ids after reading. Default true.
  bool normalize = true;
  /// Clamp requested_procs to the machine size (a few archive jobs over-
  /// request). Default true.
  bool clamp_width = true;
};

struct ParseResult {
  Trace trace;
  /// Raw header directives, e.g. header["MaxProcs"] == "128".
  std::map<std::string, std::string> header;
  std::size_t skipped_jobs = 0;
};

/// Parse from a stream. `name` labels the resulting trace. The machine
/// size comes from the MaxProcs header (falling back to MaxNodes, then to
/// the widest job). Throws std::runtime_error on malformed job lines.
ParseResult parse_swf(std::istream& in, const std::string& name,
                      const ParseOptions& options = {});

/// Parse from a file path; throws std::runtime_error if unreadable.
ParseResult parse_swf_file(const std::string& path, const ParseOptions& options = {});

}  // namespace rlbf::swf
