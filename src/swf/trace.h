// Trace container: an ordered sequence of jobs plus the machine size it
// was recorded on, with the sampling and statistics operations the paper's
// evaluation protocol needs (first-10K prefix for Fig. 1, random 256-job
// training sequences, random 1024-job test sequences for Tables 4/5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "swf/job.h"
#include "util/rng.h"

namespace rlbf::swf {

/// Summary statistics matching the paper's Table 2 columns.
struct TraceStats {
  std::size_t job_count = 0;
  std::int64_t max_procs = 0;        // "size": cluster processor count
  double mean_interarrival = 0.0;    // "it" (seconds)
  double mean_request_time = 0.0;    // "rt" (seconds)
  double mean_requested_procs = 0.0; // "nt"
  double mean_run_time = 0.0;        // AR mean (not in Table 2, useful)
  bool has_user_estimates = false;   // distinct RT vs AR columns present
};

class Trace {
 public:
  Trace() = default;
  /// `machine_procs` is the total processor count of the cluster the trace
  /// belongs to (SWF header "MaxProcs"). Jobs wider than the machine are
  /// rejected by validate().
  Trace(std::string name, std::int64_t machine_procs, std::vector<Job> jobs);

  const std::string& name() const { return name_; }
  std::int64_t machine_procs() const { return machine_procs_; }
  const std::vector<Job>& jobs() const { return jobs_; }
  /// Mutable access for trace transformations (overestimation model,
  /// prediction-noise injection). Callers must keep jobs valid.
  std::vector<Job>& mutable_jobs() { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const Job& operator[](std::size_t i) const { return jobs_[i]; }

  /// Sort jobs by submit time (stable; preserves id order within ties) and
  /// renumber sequential ids starting at 1. Parser calls this; synthetic
  /// generators produce sorted output already but call it for safety.
  void normalize();

  /// Throws std::runtime_error describing the first invalid job (non-
  /// positive size, wider than machine, negative runtime, unsorted submit).
  void validate() const;

  /// First `n` jobs (or all if fewer), submit times re-based to 0.
  Trace prefix(std::size_t n) const;

  /// Contiguous window of `count` jobs starting at `start`, submit times
  /// re-based so the first job arrives at 0. Throws if out of range.
  Trace window(std::size_t start, std::size_t count) const;

  /// Random contiguous window of `count` jobs (the paper's "randomly
  /// sampled job sequence"). If the trace is shorter than count, returns
  /// the whole trace.
  Trace sample(std::size_t count, util::Rng& rng) const;

  TraceStats stats() const;

 private:
  std::string name_;
  std::int64_t machine_procs_ = 0;
  std::vector<Job> jobs_;
};

}  // namespace rlbf::swf
