#include "swf/writer.h"

#include <fstream>

namespace rlbf::swf {

void write_swf(std::ostream& out, const Trace& trace) {
  out << "; SWF trace written by rlbackfilling\n";
  out << "; Computer: " << trace.name() << "\n";
  out << "; MaxProcs: " << trace.machine_procs() << "\n";
  out << "; MaxJobs: " << trace.size() << "\n";
  for (const auto& j : trace.jobs()) {
    out << to_swf_line(j) << '\n';
  }
}

bool write_swf_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  write_swf(out, trace);
  return static_cast<bool>(out);
}

}  // namespace rlbf::swf
