#include "swf/trace.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rlbf::swf {

Trace::Trace(std::string name, std::int64_t machine_procs, std::vector<Job> jobs)
    : name_(std::move(name)), machine_procs_(machine_procs), jobs_(std::move(jobs)) {}

void Trace::normalize() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) { return a.submit_time < b.submit_time; });
  std::int64_t next_id = 1;
  for (auto& j : jobs_) j.id = next_id++;
}

void Trace::validate() const {
  if (machine_procs_ <= 0) throw std::runtime_error("trace: machine_procs <= 0");
  std::int64_t prev_submit = 0;
  for (const auto& j : jobs_) {
    std::ostringstream err;
    if (j.procs() <= 0) {
      err << "trace " << name_ << ": job " << j.id << " has non-positive size";
    } else if (j.procs() > machine_procs_) {
      err << "trace " << name_ << ": job " << j.id << " wider than machine ("
          << j.procs() << " > " << machine_procs_ << ")";
    } else if (j.run_time < 0) {
      err << "trace " << name_ << ": job " << j.id << " has unknown runtime";
    } else if (j.submit_time < prev_submit) {
      err << "trace " << name_ << ": job " << j.id << " submit time out of order";
    }
    const std::string msg = err.str();
    if (!msg.empty()) throw std::runtime_error(msg);
    prev_submit = j.submit_time;
  }
}

Trace Trace::prefix(std::size_t n) const { return window(0, std::min(n, jobs_.size())); }

Trace Trace::window(std::size_t start, std::size_t count) const {
  if (start > jobs_.size() || start + count > jobs_.size()) {
    throw std::out_of_range("trace window out of range");
  }
  std::vector<Job> slice(jobs_.begin() + static_cast<std::ptrdiff_t>(start),
                         jobs_.begin() + static_cast<std::ptrdiff_t>(start + count));
  const std::int64_t base = slice.empty() ? 0 : slice.front().submit_time;
  for (auto& j : slice) j.submit_time -= base;
  return Trace(name_, machine_procs_, std::move(slice));
}

Trace Trace::sample(std::size_t count, util::Rng& rng) const {
  if (jobs_.size() <= count) return window(0, jobs_.size());
  const auto max_start = static_cast<std::int64_t>(jobs_.size() - count);
  const auto start = static_cast<std::size_t>(rng.uniform_int(0, max_start));
  return window(start, count);
}

TraceStats Trace::stats() const {
  TraceStats s;
  s.job_count = jobs_.size();
  s.max_procs = machine_procs_;
  if (jobs_.empty()) return s;
  double sum_rt = 0.0, sum_nt = 0.0, sum_ar = 0.0;
  for (const auto& j : jobs_) {
    sum_rt += static_cast<double>(j.request_time());
    sum_nt += static_cast<double>(j.procs());
    sum_ar += static_cast<double>(j.run_time);
    if (j.requested_time > 0 && j.requested_time != j.run_time) {
      s.has_user_estimates = true;
    }
  }
  const auto n = static_cast<double>(jobs_.size());
  s.mean_request_time = sum_rt / n;
  s.mean_requested_procs = sum_nt / n;
  s.mean_run_time = sum_ar / n;
  if (jobs_.size() > 1) {
    const double span =
        static_cast<double>(jobs_.back().submit_time - jobs_.front().submit_time);
    s.mean_interarrival = span / static_cast<double>(jobs_.size() - 1);
  }
  return s;
}

}  // namespace rlbf::swf
