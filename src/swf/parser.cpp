#include "swf/parser.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rlbf::swf {

namespace {

/// Header comment: "; Key: value" (archive style) or "; Key = value".
void parse_header_line(const std::string& line, std::map<std::string, std::string>& header) {
  std::size_t pos = 1;  // skip ';'
  while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  const std::size_t sep = line.find_first_of(":=", pos);
  if (sep == std::string::npos) return;
  std::string key = line.substr(pos, sep - pos);
  std::string value = line.substr(sep + 1);
  auto trim = [](std::string& s) {
    const auto b = s.find_first_not_of(" \t\r");
    const auto e = s.find_last_not_of(" \t\r");
    s = (b == std::string::npos) ? std::string{} : s.substr(b, e - b + 1);
  };
  trim(key);
  trim(value);
  if (!key.empty()) header.emplace(key, value);
}

}  // namespace

ParseResult parse_swf(std::istream& in, const std::string& name, const ParseOptions& options) {
  ParseResult result;
  std::vector<Job> jobs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip DOS line endings.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // blank
    if (line[first] == ';') {
      parse_header_line(line.substr(first), result.header);
      continue;
    }
    std::istringstream fields(line);
    Job j;
    // SWF: all 18 fields numeric; avg_cpu_time may be fractional.
    if (!(fields >> j.id >> j.submit_time >> j.wait_time >> j.run_time >>
          j.used_procs >> j.avg_cpu_time >> j.used_memory >> j.requested_procs >>
          j.requested_time >> j.requested_memory >> j.status >> j.user_id >>
          j.group_id >> j.executable >> j.queue >> j.partition >>
          j.preceding_job >> j.think_time)) {
      std::ostringstream err;
      err << "swf parse error at line " << lineno << " of " << name;
      throw std::runtime_error(err.str());
    }
    if (!j.valid()) {
      if (options.skip_invalid_jobs) {
        ++result.skipped_jobs;
        continue;
      }
      std::ostringstream err;
      err << "invalid job at line " << lineno << " of " << name;
      throw std::runtime_error(err.str());
    }
    jobs.push_back(j);
  }

  std::int64_t machine_procs = 0;
  for (const char* key : {"MaxProcs", "MaxNodes"}) {
    auto it = result.header.find(key);
    if (it != result.header.end()) {
      try {
        machine_procs = std::stoll(it->second);
      } catch (const std::exception&) {
        machine_procs = 0;
      }
      if (machine_procs > 0) break;
    }
  }
  if (machine_procs <= 0) {
    for (const auto& j : jobs) machine_procs = std::max(machine_procs, j.procs());
  }
  if (options.clamp_width) {
    for (auto& j : jobs) {
      if (j.requested_procs > machine_procs) j.requested_procs = machine_procs;
      if (j.used_procs > machine_procs) j.used_procs = machine_procs;
    }
  }

  result.trace = Trace(name, machine_procs, std::move(jobs));
  if (options.normalize) result.trace.normalize();
  return result;
}

ParseResult parse_swf_file(const std::string& path, const ParseOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open swf file: " + path);
  // Trace name = file basename without extension.
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return parse_swf(in, name, options);
}

}  // namespace rlbf::swf
