#include "swf/job.h"

#include <sstream>

namespace rlbf::swf {

std::string to_swf_line(const Job& job) {
  std::ostringstream os;
  os << job.id << ' ' << job.submit_time << ' ' << job.wait_time << ' '
     << job.run_time << ' ' << job.used_procs << ' ' << job.avg_cpu_time << ' '
     << job.used_memory << ' ' << job.requested_procs << ' '
     << job.requested_time << ' ' << job.requested_memory << ' ' << job.status
     << ' ' << job.user_id << ' ' << job.group_id << ' ' << job.executable
     << ' ' << job.queue << ' ' << job.partition << ' ' << job.preceding_job
     << ' ' << job.think_time;
  return os.str();
}

}  // namespace rlbf::swf
