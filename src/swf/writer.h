// SWF v2 writer: emits a header block plus 18-column job lines. Round-
// trips with parser.h, letting synthetic traces be saved and shared.
#pragma once

#include <ostream>
#include <string>

#include "swf/trace.h"

namespace rlbf::swf {

/// Write the trace as SWF (header comments then one line per job).
void write_swf(std::ostream& out, const Trace& trace);

/// Write to a file path; returns false on I/O failure.
bool write_swf_file(const std::string& path, const Trace& trace);

}  // namespace rlbf::swf
