// Scenario engine: a ScenarioSpec names everything one evaluation run
// needs — workload preset, trace transformations (load scaling,
// heavy-tail runtimes, flurry injection/scrubbing), scheduler
// configuration, and simulation options — and a global registry maps
// memorable names ("sdsc-easy", "sdsc-flurry", ...) to curated specs
// seeded from the repo's bench and example programs.
//
// Everything is deterministic in (spec, seed): build_trace() constructs
// the exact same job sequence for equal inputs, and run_scenario()
// therefore produces byte-identical metrics no matter where or how
// concurrently it executes. The sweep engine (exp/sweep.h) relies on
// this to parallelize without losing reproducibility.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "sched/scheduler.h"
#include "sim/event_sim.h"
#include "swf/trace.h"
#include "workload/transforms.h"

namespace rlbf::exp {

/// A complete, named description of one evaluation scenario.
struct ScenarioSpec {
  std::string name;         // registry key; instances get "/k=v" suffixes
  std::string description;  // one line for --list / --describe

  // ---- workload construction, applied in declaration order ----
  std::string workload = "SDSC-SP2";  // preset name (workload::all_targets)
  std::size_t trace_jobs = 10000;     // paper: first 10K jobs
  std::int64_t machine_procs = 0;     // cluster size override (0 = preset)
  double load_factor = 1.0;           // workload::scale_load when != 1
  double heavy_tail_prob = 0.0;       // workload::inject_heavy_tail when > 0
  double heavy_tail_alpha = 1.5;
  bool inject_flurry = false;         // workload::inject_flurry
  std::int64_t flurry_user = 424242;
  std::int64_t flurry_start = 86400;
  std::size_t flurry_count = 500;
  std::int64_t flurry_gap = 2;
  std::int64_t flurry_run = 120;
  bool scrub_flurries = false;        // workload::remove_flurries

  // ---- scheduler under test ----
  sched::SchedulerSpec scheduler;

  // ---- simulation options ----
  bool kill_exceeding_request = false;  // the paper's §2.1.2 kill contract
  std::size_t max_backfills = 0;        // 0 = unlimited

  /// "<workload> <scheduler label>" plus any active variant markers.
  std::string label() const;
};

/// Side data produced while building a scenario trace.
struct TraceBuildInfo {
  workload::FlurryReport flurry;  // populated when scrub_flurries is set
};

/// Construct the scenario's evaluation trace. Deterministic in
/// (spec, seed); throws std::invalid_argument for unknown workloads.
swf::Trace build_trace(const ScenarioSpec& spec, std::uint64_t seed,
                       TraceBuildInfo* info = nullptr);

/// The canonical rendering of a spec's workload-construction fields (the
/// trace cache key, minus the seed). Two specs with equal keys build
/// identical traces at equal seeds, whatever their schedulers are.
std::string trace_cache_key(const ScenarioSpec& spec);

/// Memoized build_trace: sweep instances (and training specs) sharing
/// identical workload-construction fields and seed get one shared
/// immutable trace instead of regenerating it per instance. Thread-safe;
/// the cache is process-wide and LRU-bounded.
std::shared_ptr<const swf::Trace> build_trace_cached(
    const ScenarioSpec& spec, std::uint64_t seed, TraceBuildInfo* info = nullptr);

/// Snapshot of the trace-cache counters. The counts live in the obs
/// metrics registry (exp.trace_cache.hits / .misses / .evictions) so a
/// --metrics_out dump and `rlbf_run bench` report them; this struct is a
/// convenience read of those counters plus the current residency.
struct TraceCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
};
TraceCacheStats trace_cache_stats();
void clear_trace_cache();

/// The SimulationOptions a spec describes.
sim::SimulationOptions sim_options(const ScenarioSpec& spec);

/// Outcome of one full-trace scenario simulation.
struct ScenarioRun {
  std::string scenario;  // spec.name
  std::string label;     // spec.label()
  std::uint64_t seed = 0;
  std::size_t jobs = 0;
  sim::ScheduleMetrics metrics;
  std::vector<sim::JobResult> results;  // trace order
};

/// Simulate the whole scenario trace once. Noisy-estimate scenarios with
/// noise_seed == 0 derive the estimator seed from `seed`, so repeated
/// runs at one seed are identical and different seeds decorrelate.
ScenarioRun run_scenario(const ScenarioSpec& spec, std::uint64_t seed);

/// The paper's sampled-sequences protocol (§4.3) over the scenario's
/// trace: mean bsld over `protocol.samples` random 1024-job sequences
/// with a bootstrap CI. The trace is built with protocol.seed, and
/// `protocol.options` is replaced by sim_options(spec) — the scenario
/// owns its simulation options.
core::EvalResult evaluate_scenario(const ScenarioSpec& spec,
                                   const core::EvalProtocol& protocol);

/// Global name -> spec registry, pre-seeded with the built-in catalog.
class ScenarioRegistry {
 public:
  /// The process-wide registry; built-ins are registered on first use.
  static ScenarioRegistry& instance();

  /// Register a spec; throws std::invalid_argument on empty or duplicate
  /// names.
  void add(ScenarioSpec spec);

  bool contains(const std::string& name) const;

  /// Throws std::invalid_argument naming the unknown scenario and
  /// listing what is available.
  const ScenarioSpec& get(const std::string& name) const;

  /// Registration order (the catalog's display order).
  std::vector<std::string> names() const;

 private:
  // deque: references returned by get() stay valid across later add()s.
  std::deque<ScenarioSpec> specs_;
};

/// Shorthands for ScenarioRegistry::instance().
const ScenarioSpec& find_scenario(const std::string& name);
std::vector<std::string> scenario_names();

/// Enum <-> string helpers shared by the sweep parser and the CLI.
sched::BackfillKind parse_backfill_kind(const std::string& name);
std::string backfill_kind_name(sched::BackfillKind kind);
sched::EstimateKind parse_estimate_kind(const std::string& name);
std::string estimate_kind_name(sched::EstimateKind kind);

}  // namespace rlbf::exp
