#include "exp/sweep.h"

#include <stdexcept>

#include "exp/config.h"
#include "exp/shard.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rlbf::exp {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

double require_double(const std::string& param, const std::string& value) {
  double v = 0.0;
  if (!parse_number(value, &v)) {
    throw std::invalid_argument("sweep: bad numeric value for " + param + ": '" +
                                value + "'");
  }
  return v;
}

std::size_t require_size(const std::string& param, const std::string& value) {
  std::size_t v = 0;
  if (!parse_number(value, &v)) {
    throw std::invalid_argument("sweep: bad integer value for " + param + ": '" +
                                value + "'");
  }
  return v;
}

bool require_bool(const std::string& param, const std::string& value) {
  bool v = false;
  if (!parse_bool(value, &v)) {
    throw std::invalid_argument("sweep: bad boolean value for " + param + ": '" +
                                value + "'");
  }
  return v;
}

}  // namespace

std::vector<SweepAxis> parse_sweep(const std::string& text) {
  std::vector<SweepAxis> axes;
  if (trim(text).empty()) return axes;
  for (const std::string& chunk : split(text, ';')) {
    if (trim(chunk).empty()) continue;
    const std::size_t eq = chunk.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("sweep: missing '=' in axis '" + chunk + "'");
    }
    SweepAxis axis;
    axis.param = trim(chunk.substr(0, eq));
    if (axis.param.empty()) {
      throw std::invalid_argument("sweep: empty parameter name in '" + chunk + "'");
    }
    for (const std::string& value : split(chunk.substr(eq + 1), ',')) {
      const std::string v = trim(value);
      if (v.empty()) {
        throw std::invalid_argument("sweep: empty value in axis '" + chunk + "'");
      }
      axis.values.push_back(v);
    }
    if (axis.values.empty()) {
      throw std::invalid_argument("sweep: axis '" + axis.param + "' has no values");
    }
    axes.push_back(std::move(axis));
  }
  return axes;
}

void apply_param(ScenarioSpec& spec, const std::string& param,
                 const std::string& value) {
  if (param == "workload") {
    spec.workload = value;
  } else if (param == "jobs") {
    spec.trace_jobs = require_size(param, value);
  } else if (param == "procs") {
    std::int64_t procs = 0;
    if (!parse_number(value, &procs) || procs < 0) {
      throw std::invalid_argument("sweep: bad cluster size for procs: '" +
                                  value + "'");
    }
    spec.machine_procs = procs;
  } else if (param == "load") {
    spec.load_factor = require_double(param, value);
  } else if (param == "tail") {
    spec.heavy_tail_prob = require_double(param, value);
  } else if (param == "tail_alpha") {
    spec.heavy_tail_alpha = require_double(param, value);
  } else if (param == "flurry") {
    spec.inject_flurry = require_bool(param, value);
  } else if (param == "flurry_count") {
    spec.flurry_count = require_size(param, value);
    spec.inject_flurry = spec.flurry_count > 0;
  } else if (param == "scrub") {
    spec.scrub_flurries = require_bool(param, value);
  } else if (param == "policy") {
    spec.scheduler.policy = value;
  } else if (param == "backfill") {
    spec.scheduler.backfill = parse_backfill_kind(value);
  } else if (param == "estimate") {
    spec.scheduler.estimate = parse_estimate_kind(value);
  } else if (param == "noise") {
    spec.scheduler.noise_fraction = require_double(param, value);
    if (spec.scheduler.noise_fraction > 0.0) {
      spec.scheduler.estimate = sched::EstimateKind::Noisy;
    }
  } else if (param == "kill") {
    spec.kill_exceeding_request = require_bool(param, value);
  } else if (param == "max_backfills") {
    spec.max_backfills = require_size(param, value);
  } else if (param == "agent") {
    // Trained-agent reference (training-spec name, store key, or model
    // file path); "none" clears it back to the heuristic backfill.
    spec.scheduler.agent = (value == "none") ? std::string() : value;
  } else {
    throw std::invalid_argument(
        "sweep: unknown parameter '" + param +
        "' (known: workload, jobs, procs, load, tail, tail_alpha, flurry, "
        "flurry_count, scrub, policy, backfill, estimate, noise, kill, "
        "max_backfills, agent)");
  }
}

std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base,
                                      const std::vector<SweepAxis>& axes) {
  std::vector<ScenarioSpec> specs = {base};
  bool first_axis = true;
  for (const SweepAxis& axis : axes) {
    std::vector<ScenarioSpec> next;
    next.reserve(specs.size() * axis.values.size());
    for (const ScenarioSpec& spec : specs) {
      for (const std::string& value : axis.values) {
        ScenarioSpec instance = spec;
        apply_param(instance, axis.param, value);
        instance.name +=
            std::string(first_axis ? "/" : ",") + axis.param + "=" + value;
        next.push_back(std::move(instance));
      }
    }
    specs = std::move(next);
    first_axis = false;
  }
  return specs;
}

std::vector<std::size_t> run_sweep_instances(std::size_t spec_count,
                                             const SweepOptions& options) {
  if (options.shard_count == 0) {
    throw std::invalid_argument("sweep: shard count must be >= 1");
  }
  if (options.shard_index >= options.shard_count) {
    throw std::invalid_argument(
        "sweep: shard index " + std::to_string(options.shard_index) +
        " out of range for shard count " + std::to_string(options.shard_count));
  }
  const std::size_t reps = options.replications == 0 ? 1 : options.replications;
  ShardSpec shard;
  shard.index = options.shard_index;
  shard.count = options.shard_count;
  return shard_instance_indices(spec_count * reps, shard);
}

std::vector<ScenarioRun> run_sweep(const std::vector<ScenarioSpec>& specs,
                                   const SweepOptions& options) {
  const std::size_t reps = options.replications == 0 ? 1 : options.replications;
  // Fix every seed up front on the calling thread: replication r > 0 gets
  // the first output of the r-th stream split from Rng(options.seed).
  // This happens before sharding, so every shard derives the identical
  // seed table and the union of shard results is byte-identical to an
  // unsharded run.
  std::vector<std::uint64_t> seeds(reps);
  seeds[0] = options.seed;
  util::Rng root(options.seed);
  for (std::size_t r = 1; r < reps; ++r) seeds[r] = root.split()();

  const std::vector<std::size_t> instances =
      run_sweep_instances(specs.size(), options);
  std::vector<ScenarioRun> runs(instances.size());
  util::ThreadPool pool(options.threads);
  obs::Span sweep_span("run_sweep", "sweep");
  pool.parallel_for(runs.size(), [&](std::size_t i) {
    const std::size_t g = instances[i];
    const std::size_t spec_index = g / reps;
    const std::size_t rep = g % reps;
    obs::Span span = obs::Span::labeled(specs[spec_index].name, "sweep");
    obs::ScopedTimer timer("sweep.instance_seconds");
    runs[i] = run_scenario(specs[spec_index], seeds[rep]);
    if (obs::enabled()) {
      static obs::CachedCounter c("sweep.instances");
      c.add(1);
    }
  });
  return runs;
}

}  // namespace rlbf::exp
