#include "exp/config.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace rlbf::exp {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

bool parse_number(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool parse_int64(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool parse_uint64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_bool(const std::string& text, bool* out) {
  const std::string t = lower(text);
  if (t == "1" || t == "true" || t == "yes" || t == "on") {
    *out = true;
    return true;
  }
  if (t == "0" || t == "false" || t == "no" || t == "off") {
    *out = false;
    return true;
  }
  return false;
}

std::string format_double_exact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void ArgParser::add_typed(const std::string& name, const std::string& help,
                          std::string default_value, bool is_switch,
                          std::function<bool(const std::string&)> assign) {
  Flag flag;
  flag.name = name.rfind("--", 0) == 0 ? name : "--" + name;
  flag.help = help;
  flag.default_value = std::move(default_value);
  flag.is_switch = is_switch;
  flag.assign = std::move(assign);
  flags_.push_back(std::move(flag));
}

void ArgParser::add(const std::string& name, std::string* value,
                    const std::string& help) {
  add_typed(name, help, *value, false, [value](const std::string& v) {
    *value = v;
    return true;
  });
}

void ArgParser::add(const std::string& name, bool* value, const std::string& help) {
  add_typed(name, help, *value ? "true" : "false", false,
            [value](const std::string& v) { return parse_bool(v, value); });
}

void ArgParser::add_flag(const std::string& name, bool* value,
                         const std::string& help) {
  add_typed(name, help, *value ? "true" : "false", true,
            [value](const std::string& v) { return parse_bool(v, value); });
}

void ArgParser::add(const std::string& name, double* value, const std::string& help) {
  std::ostringstream os;
  os << *value;
  add_typed(name, help, os.str(), false,
            [value](const std::string& v) { return parse_number(v, value); });
}

void ArgParser::add_positional(const std::string& name, std::string* value,
                               const std::string& help) {
  positionals_.push_back({name, help, value});
}

namespace {

// "--sample-jobs" and "--sample_jobs" are the same flag: the repo's
// binaries historically mixed both spellings, so the parser folds them.
bool same_flag_name(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char x = a[i] == '_' ? '-' : a[i];
    const char y = b[i] == '_' ? '-' : b[i];
    if (x != y) return false;
  }
  return true;
}

}  // namespace

const ArgParser::Flag* ArgParser::find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (same_flag_name(flag.name, name)) return &flag;
  }
  return nullptr;
}

bool ArgParser::parse(int argc, char** argv, std::string* error) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<std::size_t>(argc) - 1 : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args, error);
}

bool ArgParser::parse(const std::vector<std::string>& args, std::string* error) {
  help_requested_ = false;
  const auto fail = [error](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  std::size_t next_positional = 0;
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      if (next_positional >= positionals_.size()) {
        return fail("unexpected argument: " + arg);
      }
      *positionals_[next_positional++].value = arg;
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(0, eq);
    const Flag* flag = find(name);
    if (flag == nullptr) return fail("unknown flag: " + name);
    if (eq == std::string::npos) {
      if (!flag->is_switch) return fail("flag needs a value: " + name + "=...");
      flag->assign("true");
      continue;
    }
    const std::string value = arg.substr(eq + 1);
    if (!flag->assign(value)) {
      return fail("bad value for " + name + ": '" + value + "'");
    }
  }
  return true;
}

void ArgParser::parse_or_exit(int argc, char** argv) {
  std::string error;
  if (!parse(argc, argv, &error)) {
    std::cerr << program_ << ": " << error << "\n\n" << usage();
    std::exit(2);
  }
  if (help_requested_) {
    std::cout << usage();
    std::exit(0);
  }
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_;
  for (const auto& pos : positionals_) os << " [" << pos.name << "]";
  if (!flags_.empty()) os << " [flags]";
  os << "\n";
  if (!summary_.empty()) os << summary_ << "\n";
  std::size_t width = 0;
  for (const auto& flag : flags_) {
    width = std::max(width, flag.name.size() + (flag.is_switch ? 0 : 2));
  }
  for (const auto& pos : positionals_) {
    os << "  " << pos.name << std::string(width > pos.name.size() ? width - pos.name.size() : 0, ' ')
       << "    " << pos.help << "\n";
  }
  for (const auto& flag : flags_) {
    const std::string shown = flag.is_switch ? flag.name : flag.name + "=X";
    os << "  " << shown << std::string(width - shown.size(), ' ') << "    "
       << flag.help << " (default: " << flag.default_value << ")\n";
  }
  return os.str();
}

}  // namespace rlbf::exp
