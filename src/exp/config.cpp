#include "exp/config.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <locale.h>
#include <sstream>

namespace rlbf::exp {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

// All numeric parsing is pinned to the C locale: an embedding process
// that calls setlocale(LC_NUMERIC, "de_DE") must not make strtod treat
// '.' as a thousands separator and reject "3.14" (or, worse, accept
// "3,14"). Sweep values, flags, and fingerprints all parse identically
// on every host a shard lands on. newlocale can fail (ENOMEM); passing
// a null locale_t to strtod_l is undefined, so fall back to plain
// strtod rather than cache a crash.
double strtod_c(const char* text, char** end) {
  // The lazy init runs after the caller has already set errno = 0, and
  // POSIX leaves errno unspecified on newlocale success — shield the
  // caller's errno protocol from the one-time setup.
  static const locale_t loc = [] {
    const int saved_errno = errno;
    const locale_t l = newlocale(LC_ALL_MASK, "C", nullptr);
    errno = saved_errno;
    return l;
  }();
  if (loc == static_cast<locale_t>(nullptr)) return std::strtod(text, end);
  return strtod_l(text, end, loc);
}

}  // namespace

bool parse_number(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = strtod_c(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  // strtod reports ERANGE both for true overflow (result ±HUGE_VAL) and
  // for subnormal results ("1e-320"), which are perfectly valid inputs:
  // accept any finite value, reject overflow and every other errno.
  if (errno != 0 && !(errno == ERANGE && std::isfinite(v))) return false;
  *out = v;
  return true;
}

bool parse_int64(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool parse_uint64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_bool(const std::string& text, bool* out) {
  const std::string t = lower(text);
  if (t == "1" || t == "true" || t == "yes" || t == "on") {
    *out = true;
    return true;
  }
  if (t == "0" || t == "false" || t == "no" || t == "off") {
    *out = false;
    return true;
  }
  return false;
}

std::string format_double_exact(double value) {
  // std::to_chars is locale-independent by definition and its
  // precision form is specified to match printf "%.17g" byte for byte
  // (verified against snprintf across random doubles when this was
  // introduced), so fingerprints cannot fork under LC_NUMERIC.
  char buf[64];
  const auto res =
      std::to_chars(buf, buf + sizeof(buf), value, std::chars_format::general, 17);
  return std::string(buf, res.ptr);
}

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void ArgParser::add_typed(const std::string& name, const std::string& help,
                          std::string default_value, bool is_switch,
                          std::function<bool(const std::string&)> assign) {
  Flag flag;
  flag.name = name.rfind("--", 0) == 0 ? name : "--" + name;
  flag.help = help;
  flag.default_value = std::move(default_value);
  flag.is_switch = is_switch;
  flag.assign = std::move(assign);
  flags_.push_back(std::move(flag));
}

void ArgParser::add(const std::string& name, std::string* value,
                    const std::string& help) {
  add_typed(name, help, *value, false, [value](const std::string& v) {
    *value = v;
    return true;
  });
}

void ArgParser::add(const std::string& name, bool* value, const std::string& help) {
  add_typed(name, help, *value ? "true" : "false", false,
            [value](const std::string& v) { return parse_bool(v, value); });
}

void ArgParser::add_flag(const std::string& name, bool* value,
                         const std::string& help) {
  add_typed(name, help, *value ? "true" : "false", true,
            [value](const std::string& v) { return parse_bool(v, value); });
}

void ArgParser::add(const std::string& name, double* value, const std::string& help) {
  std::ostringstream os;
  os << *value;
  add_typed(name, help, os.str(), false,
            [value](const std::string& v) { return parse_number(v, value); });
}

void ArgParser::add_positional(const std::string& name, std::string* value,
                               const std::string& help) {
  positionals_.push_back({name, help, value});
}

namespace {

// "--sample-jobs" and "--sample_jobs" are the same flag: the repo's
// binaries historically mixed both spellings, so the parser folds them.
bool same_flag_name(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char x = a[i] == '_' ? '-' : a[i];
    const char y = b[i] == '_' ? '-' : b[i];
    if (x != y) return false;
  }
  return true;
}

}  // namespace

const ArgParser::Flag* ArgParser::find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (same_flag_name(flag.name, name)) return &flag;
  }
  return nullptr;
}

bool ArgParser::parse(int argc, char** argv, std::string* error) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<std::size_t>(argc) - 1 : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args, error);
}

bool ArgParser::parse(const std::vector<std::string>& args, std::string* error) {
  help_requested_ = false;
  const auto fail = [error](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  std::size_t next_positional = 0;
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      if (next_positional >= positionals_.size()) {
        return fail("unexpected argument: " + arg);
      }
      *positionals_[next_positional++].value = arg;
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(0, eq);
    const Flag* flag = find(name);
    if (flag == nullptr) return fail("unknown flag: " + name);
    if (eq == std::string::npos) {
      if (!flag->is_switch) return fail("flag needs a value: " + name + "=...");
      flag->assign("true");
      continue;
    }
    const std::string value = arg.substr(eq + 1);
    if (!flag->assign(value)) {
      return fail("bad value for " + name + ": '" + value + "'");
    }
  }
  return true;
}

void ArgParser::parse_or_exit(int argc, char** argv) {
  std::string error;
  if (!parse(argc, argv, &error)) {
    std::cerr << program_ << ": " << error << "\n\n" << usage();
    std::exit(2);
  }
  if (help_requested_) {
    std::cout << usage();
    std::exit(0);
  }
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_;
  for (const auto& pos : positionals_) os << " [" << pos.name << "]";
  if (!flags_.empty()) os << " [flags]";
  os << "\n";
  if (!summary_.empty()) os << summary_ << "\n";
  std::size_t width = 0;
  for (const auto& flag : flags_) {
    width = std::max(width, flag.name.size() + (flag.is_switch ? 0 : 2));
  }
  for (const auto& pos : positionals_) {
    os << "  " << pos.name << std::string(width > pos.name.size() ? width - pos.name.size() : 0, ' ')
       << "    " << pos.help << "\n";
  }
  for (const auto& flag : flags_) {
    const std::string shown = flag.is_switch ? flag.name : flag.name + "=X";
    os << "  " << shown << std::string(width - shown.size(), ' ') << "    "
       << flag.help << " (default: " << flag.default_value << ")\n";
  }
  return os.str();
}

}  // namespace rlbf::exp
