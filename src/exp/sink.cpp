#include "exp/sink.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <locale>
#include <sstream>

namespace rlbf::exp {

SummaryRow summarize(const ScenarioRun& run) {
  SummaryRow row;
  row.scenario = run.scenario;
  row.label = run.label;
  row.seed = run.seed;
  row.jobs = run.jobs;
  row.bsld = run.metrics.avg_bounded_slowdown;
  row.avg_wait = run.metrics.avg_wait_time;
  row.utilization = run.metrics.utilization;
  row.backfilled = static_cast<double>(run.metrics.backfilled_jobs);
  row.killed = static_cast<double>(run.metrics.killed_jobs);
  return row;
}

SummaryRow summarize(const ScenarioSpec& spec, const core::EvalResult& result,
                     std::uint64_t seed) {
  SummaryRow row;
  row.scenario = spec.name;
  row.label = spec.label();
  row.seed = seed;
  row.jobs = spec.trace_jobs;  // trace length, as in full-run rows
  row.bsld = result.mean;
  row.ci_lo = result.ci_lo;
  row.ci_hi = result.ci_hi;
  return row;
}

// The fixed-format helpers go through std::to_chars, which is
// locale-independent and specified to match printf "%.*g"/"%.*f" in the
// C locale byte for byte — so a shard running in an embedding process
// with LC_NUMERIC=de_DE still writes "3.14", never "3,14", and goldens
// stay portable across hosts.
std::string format_metric(double value) {
  if (std::isnan(value)) return "";
  char buf[64];
  const auto res =
      std::to_chars(buf, buf + sizeof(buf), value, std::chars_format::general, 6);
  return std::string(buf, res.ptr);
}

std::string format_count(double value) {
  if (std::isnan(value)) return "";
  char buf[512];  // fixed-notation %.0f of a large double needs room
  const auto res =
      std::to_chars(buf, buf + sizeof(buf), value, std::chars_format::fixed, 0);
  if (res.ec != std::errc()) return "";  // cannot happen for finite counts
  return std::string(buf, res.ptr);
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  // NaN means "not measured"; infinities (a degenerate run dividing by
  // zero) have no JSON literal either — "inf" would poison the file.
  return std::isfinite(value) ? format_metric(value) : "null";
}

}  // namespace

std::string json_escape(const std::string& field) {
  std::string out;
  for (const char c : field) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        // Remaining control bytes have no short escape and are illegal
        // raw inside a JSON string — a scenario label containing one
        // must not poison the whole summary file.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string summary_csv_header() {
  return "scenario,label,seed,jobs,bsld,avg_wait,utilization,backfilled,"
         "killed,ci_lo,ci_hi";
}

std::string summary_csv_row(const SummaryRow& row) {
  std::ostringstream os;
  // The classic locale pins integer insertion too: an embedding process
  // calling std::locale::global(de_DE) must not turn seed=100000 into
  // the phantom-column-producing "100.000".
  os.imbue(std::locale::classic());
  os << csv_escape(row.scenario) << ',' << csv_escape(row.label) << ','
     << row.seed << ',' << row.jobs << ',' << format_metric(row.bsld) << ','
     << format_metric(row.avg_wait) << ',' << format_metric(row.utilization)
     << ',' << format_count(row.backfilled) << ',' << format_count(row.killed)
     << ',' << format_metric(row.ci_lo) << ',' << format_metric(row.ci_hi);
  return os.str();
}

std::string summary_json_row(const SummaryRow& row) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "\"scenario\": \"" << json_escape(row.scenario) << "\", \"label\": \""
     << json_escape(row.label) << "\", \"seed\": " << row.seed
     << ", \"jobs\": " << row.jobs;
  os << ", \"bsld\": " << json_number(row.bsld)
     << ", \"avg_wait\": " << json_number(row.avg_wait)
     << ", \"utilization\": " << json_number(row.utilization)
     << ", \"backfilled\": "
     << (std::isfinite(row.backfilled) ? format_count(row.backfilled) : "null")
     << ", \"killed\": "
     << (std::isfinite(row.killed) ? format_count(row.killed) : "null");
  if (!std::isnan(row.ci_lo)) {
    os << ", \"ci_lo\": " << json_number(row.ci_lo)
       << ", \"ci_hi\": " << json_number(row.ci_hi);
  }
  return os.str();
}

void write_summary_csv(std::ostream& os, const std::vector<SummaryRow>& rows) {
  os << summary_csv_header() << '\n';
  for (const SummaryRow& row : rows) os << summary_csv_row(row) << '\n';
}

void write_summary_json(std::ostream& os, const std::vector<SummaryRow>& rows) {
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    os << "  {" << summary_json_row(rows[i]) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

void write_per_job_csv(std::ostream& os, const ScenarioRun& run) {
  // Integers stream through os directly, so pin the caller's stream to
  // the classic locale for the duration (std::locale::global grouping
  // would otherwise corrupt job indices and times).
  const std::locale prev = os.imbue(std::locale::classic());
  os << "job_index,submit,start,end,procs,wait,run,bsld,backfilled,killed\n";
  for (const sim::JobResult& r : run.results) {
    os << r.job_index << ',' << r.submit_time << ',' << r.start_time << ','
       << r.end_time << ',' << r.procs << ',' << r.wait_time() << ','
       << r.run_time() << ',' << format_metric(r.bounded_slowdown()) << ','
       << (r.backfilled ? 1 : 0) << ',' << (r.killed ? 1 : 0) << '\n';
  }
  os.imbue(prev);
}

namespace {

template <typename Fn>
bool save(const std::string& path, const Fn& write) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace

bool save_summary_csv(const std::string& path, const std::vector<SummaryRow>& rows) {
  return save(path, [&](std::ostream& os) { write_summary_csv(os, rows); });
}

bool save_summary_json(const std::string& path,
                       const std::vector<SummaryRow>& rows) {
  return save(path, [&](std::ostream& os) { write_summary_json(os, rows); });
}

bool save_per_job_csv(const std::string& path, const ScenarioRun& run) {
  return save(path, [&](std::ostream& os) { write_per_job_csv(os, run); });
}

std::string sanitize_filename(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += keep ? c : '_';
  }
  return out;
}

std::string per_job_filename(const std::string& scenario, std::uint64_t seed) {
  return "jobs-" + sanitize_filename(scenario) + "-s" + std::to_string(seed) +
         ".csv";
}

}  // namespace rlbf::exp
