#include "exp/sink.h"

#include <cstdio>
#include <fstream>

namespace rlbf::exp {

SummaryRow summarize(const ScenarioRun& run) {
  SummaryRow row;
  row.scenario = run.scenario;
  row.label = run.label;
  row.seed = run.seed;
  row.jobs = run.jobs;
  row.bsld = run.metrics.avg_bounded_slowdown;
  row.avg_wait = run.metrics.avg_wait_time;
  row.utilization = run.metrics.utilization;
  row.backfilled = static_cast<double>(run.metrics.backfilled_jobs);
  row.killed = static_cast<double>(run.metrics.killed_jobs);
  return row;
}

SummaryRow summarize(const ScenarioSpec& spec, const core::EvalResult& result,
                     std::uint64_t seed) {
  SummaryRow row;
  row.scenario = spec.name;
  row.label = spec.label();
  row.seed = seed;
  row.jobs = spec.trace_jobs;  // trace length, as in full-run rows
  row.bsld = result.mean;
  row.ci_lo = result.ci_lo;
  row.ci_hi = result.ci_hi;
  return row;
}

std::string format_metric(double value) {
  if (std::isnan(value)) return "";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string format_count(double value) {
  if (std::isnan(value)) return "";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", value);
  return buf;
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& field) {
  std::string out;
  for (const char c : field) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string json_number(double value) {
  return std::isnan(value) ? "null" : format_metric(value);
}

}  // namespace

void write_summary_csv(std::ostream& os, const std::vector<SummaryRow>& rows) {
  os << "scenario,label,seed,jobs,bsld,avg_wait,utilization,backfilled,"
        "killed,ci_lo,ci_hi\n";
  for (const SummaryRow& row : rows) {
    os << csv_escape(row.scenario) << ',' << csv_escape(row.label) << ','
       << row.seed << ',' << row.jobs << ',' << format_metric(row.bsld) << ','
       << format_metric(row.avg_wait) << ',' << format_metric(row.utilization)
       << ',' << format_count(row.backfilled) << ',' << format_count(row.killed)
       << ',' << format_metric(row.ci_lo) << ',' << format_metric(row.ci_hi)
       << '\n';
  }
}

void write_summary_json(std::ostream& os, const std::vector<SummaryRow>& rows) {
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SummaryRow& row = rows[i];
    os << "  {\"scenario\": \"" << json_escape(row.scenario) << "\", \"label\": \""
       << json_escape(row.label) << "\", \"seed\": " << row.seed
       << ", \"jobs\": " << row.jobs;
    os << ", \"bsld\": " << json_number(row.bsld)
       << ", \"avg_wait\": " << json_number(row.avg_wait)
       << ", \"utilization\": " << json_number(row.utilization)
       << ", \"backfilled\": "
       << (std::isnan(row.backfilled) ? "null" : format_count(row.backfilled))
       << ", \"killed\": "
       << (std::isnan(row.killed) ? "null" : format_count(row.killed));
    if (!std::isnan(row.ci_lo)) {
      os << ", \"ci_lo\": " << json_number(row.ci_lo)
         << ", \"ci_hi\": " << json_number(row.ci_hi);
    }
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

void write_per_job_csv(std::ostream& os, const ScenarioRun& run) {
  os << "job_index,submit,start,end,procs,wait,run,bsld,backfilled,killed\n";
  for (const sim::JobResult& r : run.results) {
    os << r.job_index << ',' << r.submit_time << ',' << r.start_time << ','
       << r.end_time << ',' << r.procs << ',' << r.wait_time() << ','
       << r.run_time() << ',' << format_metric(r.bounded_slowdown()) << ','
       << (r.backfilled ? 1 : 0) << ',' << (r.killed ? 1 : 0) << '\n';
  }
}

namespace {

template <typename Fn>
bool save(const std::string& path, const Fn& write) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace

bool save_summary_csv(const std::string& path, const std::vector<SummaryRow>& rows) {
  return save(path, [&](std::ostream& os) { write_summary_csv(os, rows); });
}

bool save_summary_json(const std::string& path,
                       const std::vector<SummaryRow>& rows) {
  return save(path, [&](std::ostream& os) { write_summary_json(os, rows); });
}

bool save_per_job_csv(const std::string& path, const ScenarioRun& run) {
  return save(path, [&](std::ostream& os) { write_per_job_csv(os, run); });
}

std::string sanitize_filename(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += keep ? c : '_';
  }
  return out;
}

}  // namespace rlbf::exp
