// Sharded sweep execution and shard-output merging.
//
// A sweep's expanded instance list is fully determined by (specs, seed)
// before any worker starts, so distributing it across machines is a
// deterministic partition of instance indices: shard i of N owns every
// global index g with g % N == i. Each shard writes a shard-tagged
// summary ("summary-shard<i>of<N>.csv/json") whose rows carry their
// global instance index, and merge_shard_dirs() recombines a complete
// shard set into the canonical unsharded files — byte-identical to a
// single-machine run at the same seed, because rows are rendered once
// (exp/sink.h) and merged as opaque text, never re-parsed and
// re-formatted.
//
//   machine A: rlbf_run sweep --scenario=... --sweep=... --shard=0/2 --out_dir=sa
//   machine B: rlbf_run sweep --scenario=... --sweep=... --shard=1/2 --out_dir=sb
//   anywhere:  rlbf_run merge --inputs=sa,sb --out_dir=merged
//
// Incomplete or inconsistent shard sets (a missing shard, duplicate or
// out-of-range instances, mixed shard counts) fail with named
// std::runtime_error diagnostics — never a silently wrong merge.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "exp/sink.h"

namespace rlbf::exp {

/// One shard of an N-way partition. The default (0/1) is "everything":
/// an unsharded run is shard 0 of 1.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  bool is_all() const { return count == 1; }
  std::string label() const;  // "0/3"
};

/// Parse "INDEX/COUNT" ("0/3"). Throws std::invalid_argument naming the
/// malformed spec on junk, COUNT == 0, or INDEX >= COUNT.
ShardSpec parse_shard(const std::string& text);

/// The global instance indices shard `shard` owns out of `total`
/// (ascending). Round-robin: g % count == index, so shard workloads stay
/// balanced even when expensive instances cluster at one end of the
/// grid. Shards beyond the instance count come back empty — a valid,
/// mergeable result.
std::vector<std::size_t> shard_instance_indices(std::size_t total,
                                                const ShardSpec& shard);

/// A shard's slice of a sweep summary: row k of `rows` is global
/// instance `instances[k]` of a `total_instances`-instance sweep.
struct ShardSummary {
  ShardSpec shard;
  std::size_t total_instances = 0;
  std::vector<std::size_t> instances;
  std::vector<SummaryRow> rows;
};

/// "summary-shard0of3" + ext ("csv"/"json").
std::string shard_summary_filename(const ShardSpec& shard,
                                   const std::string& ext);

/// Shard-tagged renderings: the CSV carries a "# rlbf-shard i/N
/// total=T" header line and a leading `instance` column; the JSON wraps
/// the row objects (each with an extra "instance" key) in a
/// {"shard": ..., "total": ..., "rows": [...]} envelope. Row payloads
/// are the canonical sink renderings, byte for byte.
void write_shard_summary_csv(std::ostream& os, const ShardSummary& summary);
void write_shard_summary_json(std::ostream& os, const ShardSummary& summary);
bool save_shard_summary_csv(const std::string& path, const ShardSummary& summary);
bool save_shard_summary_json(const std::string& path, const ShardSummary& summary);

/// The validated shape of a merged shard set.
struct ShardSetInfo {
  std::size_t shard_count = 0;
  std::size_t total_instances = 0;
};

/// Merge a complete set of shard summary files (all CSV or all JSON,
/// one per shard) into the canonical unsharded file at `out_path`:
/// global order restored, the shard tagging stripped. Throws
/// std::runtime_error with a named diagnostic on unreadable or
/// malformed inputs, inconsistent shard sets (mixed counts/totals),
/// duplicate or missing shards, and duplicate, out-of-range, or missing
/// (gap) instances. Rows are moved as opaque text, so the output is
/// byte-identical to what the unsharded run would have written.
ShardSetInfo merge_shard_summaries_csv(const std::vector<std::string>& inputs,
                                       const std::string& out_path);
ShardSetInfo merge_shard_summaries_json(const std::vector<std::string>& inputs,
                                        const std::string& out_path);

struct MergeReport {
  std::size_t shard_count = 0;
  std::size_t total_instances = 0;
  bool csv_merged = false;
  bool json_merged = false;
  std::size_t per_job_files_copied = 0;
};

/// Directory-level merge: scan `input_dirs` for shard summary files
/// (summary-shard*of*.csv/.json), merge each family present into
/// `out_dir`/summary.csv|json, and copy the shards' per-job CSVs
/// (jobs-*.csv, disjoint across shards by construction) alongside them,
/// so the merged directory diffs clean against an unsharded --out_dir.
/// Throws std::runtime_error (named) when no shard summaries are found,
/// on any merge inconsistency above, or when two inputs carry the same
/// per-job file.
MergeReport merge_shard_dirs(const std::vector<std::string>& input_dirs,
                             const std::string& out_dir);

}  // namespace rlbf::exp
