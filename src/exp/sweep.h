// Declarative parameter sweeps over scenarios.
//
// A sweep is a base ScenarioSpec plus axes of (parameter, values); the
// cartesian product expands into concrete scenario instances which the
// executor runs on a util::ThreadPool. Results come back in instance
// order — never in completion order — and every stochastic input is
// fixed before any worker starts (trace seeds are shared so every
// configuration sees identical job sequences, replication seeds are
// pre-split from one util::Rng stream), so a sweep's output is
// byte-identical for a given seed at ANY thread count.
//
//   auto axes  = exp::parse_sweep("load=0.5,1.0,1.5;policy=FCFS,SJF");
//   auto specs = exp::expand_grid(exp::find_scenario("sdsc-easy"), axes);
//   auto runs  = exp::run_sweep(specs, {.seed = 1, .threads = 8});
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/scenario.h"

namespace rlbf::exp {

/// One sweep dimension: a settable parameter and the values it takes.
struct SweepAxis {
  std::string param;
  std::vector<std::string> values;
};

/// Parse "k1=v1,v2;k2=v3" (';'-separated axes, ','-separated values).
/// Whitespace around tokens is trimmed; throws std::invalid_argument on
/// empty axes, empty values, or a missing '='.
std::vector<SweepAxis> parse_sweep(const std::string& text);

/// Set one sweep parameter on a spec. Supported parameters:
///   workload, jobs, procs, load, tail, tail_alpha, flurry, flurry_count,
///   scrub, policy, backfill, estimate, noise, kill, max_backfills
/// Throws std::invalid_argument on unknown parameters or bad values.
void apply_param(ScenarioSpec& spec, const std::string& param,
                 const std::string& value);

/// Cartesian expansion, first axis varying slowest. Instance names are
/// "<base>/k=v[,k=v...]" (no suffix for an empty axis list, which yields
/// just the base). Axis order and value order are preserved, so the
/// expansion order is deterministic.
std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base,
                                      const std::vector<SweepAxis>& axes);

struct SweepOptions {
  std::uint64_t seed = 1;
  std::size_t threads = 0;       // 0 = hardware concurrency
  std::size_t replications = 1;  // runs per instance at distinct seeds
  /// Distributed execution: run only shard `shard_index` of a
  /// `shard_count`-way round-robin partition of the flattened
  /// (spec-major × replication) instance list. Every stochastic input is
  /// fixed before partitioning, so the union of all shards' results is
  /// byte-identical to an unsharded run at the same seed (exp/shard.h
  /// merges the emitted artifacts). The default 0/1 is "everything".
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
};

/// Execute every (spec, replication) pair in parallel. Replication 0
/// runs at options.seed (so a 1-replication sweep matches a direct
/// run_scenario call); further replications use seeds pre-split from a
/// util::Rng(options.seed) stream on the calling thread. The result
/// order is spec-major then replication, independent of scheduling.
/// With sharding active, only the shard's instances are run (still in
/// global order); run_sweep_instances() names which global indices they
/// are. Throws std::invalid_argument on shard_count == 0 or
/// shard_index >= shard_count.
std::vector<ScenarioRun> run_sweep(const std::vector<ScenarioSpec>& specs,
                                   const SweepOptions& options = {});

/// The global instance indices run_sweep(specs, options) executes, in
/// result order: all of 0..specs.size()*replications-1 unsharded, the
/// shard's round-robin subset otherwise.
std::vector<std::size_t> run_sweep_instances(std::size_t spec_count,
                                             const SweepOptions& options);

}  // namespace rlbf::exp
