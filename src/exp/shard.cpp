#include "exp/shard.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <locale>
#include <map>
#include <stdexcept>

#include "exp/config.h"

namespace rlbf::exp {

namespace fs = std::filesystem;

namespace {

constexpr const char* kCsvHeaderPrefix = "# rlbf-shard ";

std::size_t parse_size_or_throw(const std::string& text,
                                const std::string& context) {
  std::size_t value = 0;
  if (!parse_number(text, &value)) {
    throw std::runtime_error("merge: bad number '" + text + "' in " + context);
  }
  return value;
}

/// One shard file reduced to its tag plus opaque row payloads: the text
/// between the shard decoration and the end of each row, exactly as the
/// canonical sink writer produced it. Merging moves these payloads
/// without re-parsing numbers, so the merged file cannot drift from the
/// unsharded rendering by even one byte.
struct ShardFile {
  std::string path;
  ShardSpec shard;
  std::size_t total = 0;
  std::vector<std::pair<std::size_t, std::string>> rows;  // (global g, payload)
};

ShardFile read_shard_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("merge: cannot read shard file " + path);
  ShardFile file;
  file.path = path;
  std::string line;
  if (!std::getline(in, line) || line.rfind(kCsvHeaderPrefix, 0) != 0) {
    throw std::runtime_error("merge: " + path +
                             " is not a shard summary (missing '# rlbf-shard' "
                             "header line)");
  }
  const std::string tag = line.substr(std::string(kCsvHeaderPrefix).size());
  const std::size_t space = tag.find(' ');
  if (space == std::string::npos || tag.compare(space, 7, " total=") != 0) {
    throw std::runtime_error("merge: malformed shard header in " + path + ": '" +
                             line + "'");
  }
  try {
    file.shard = parse_shard(tag.substr(0, space));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("merge: " + path + ": " + e.what());
  }
  file.total = parse_size_or_throw(tag.substr(space + 7), path + " header");
  if (!std::getline(in, line) ||
      line != "instance," + summary_csv_header()) {
    throw std::runtime_error("merge: unexpected CSV column header in " + path);
  }
  // A quoted CSV field may legitimately contain newlines (csv_escape
  // quotes them), so logical rows are accumulated until the quote count
  // is even. The instance column is always an unquoted number before the
  // first comma, so splitting the logical row there stays safe.
  std::string row;
  while (std::getline(in, line)) {
    if (row.empty()) {
      if (line.empty()) continue;
      row = line;
    } else {
      row += '\n';
      row += line;
    }
    if (std::count(row.begin(), row.end(), '"') % 2 != 0) continue;
    const std::size_t comma = row.find(',');
    if (comma == std::string::npos) {
      throw std::runtime_error("merge: malformed row in " + path + ": '" + row +
                               "'");
    }
    file.rows.emplace_back(
        parse_size_or_throw(row.substr(0, comma), path + " instance column"),
        row.substr(comma + 1));
    row.clear();
  }
  if (!row.empty()) {
    throw std::runtime_error("merge: unterminated quoted field in " + path);
  }
  return file;
}

ShardFile read_shard_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("merge: cannot read shard file " + path);
  ShardFile file;
  file.path = path;
  std::string line;
  const std::string shard_prefix = "{\"shard\": \"";
  const std::string total_marker = "\", \"total\": ";
  const std::string rows_marker = ", \"rows\": [";
  if (!std::getline(in, line) || line.rfind(shard_prefix, 0) != 0) {
    throw std::runtime_error("merge: " + path +
                             " is not a shard summary (missing shard envelope)");
  }
  const std::size_t total_at = line.find(total_marker);
  const std::size_t rows_at = line.find(rows_marker);
  if (total_at == std::string::npos || rows_at == std::string::npos ||
      rows_at < total_at || line.substr(rows_at + rows_marker.size()) != "") {
    throw std::runtime_error("merge: malformed shard envelope in " + path +
                             ": '" + line + "'");
  }
  try {
    file.shard =
        parse_shard(line.substr(shard_prefix.size(), total_at - shard_prefix.size()));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("merge: " + path + ": " + e.what());
  }
  file.total = parse_size_or_throw(
      line.substr(total_at + total_marker.size(),
                  rows_at - total_at - total_marker.size()),
      path + " envelope");
  const std::string row_prefix = "  {\"instance\": ";
  bool closed = false;
  while (std::getline(in, line)) {
    if (line == "]}") {
      closed = true;
      break;
    }
    if (line.rfind(row_prefix, 0) != 0) {
      throw std::runtime_error("merge: malformed row in " + path + ": '" + line +
                               "'");
    }
    std::string rest = line.substr(row_prefix.size());
    const std::size_t sep = rest.find(", ");
    if (sep == std::string::npos) {
      throw std::runtime_error("merge: malformed row in " + path + ": '" + line +
                               "'");
    }
    const std::size_t g =
        parse_size_or_throw(rest.substr(0, sep), path + " instance key");
    rest = rest.substr(sep + 2);
    if (!rest.empty() && rest.back() == ',') rest.pop_back();
    if (rest.empty() || rest.back() != '}') {
      throw std::runtime_error("merge: malformed row in " + path + ": '" + line +
                               "'");
    }
    rest.pop_back();
    file.rows.emplace_back(g, std::move(rest));
  }
  if (!closed) {
    throw std::runtime_error("merge: truncated shard summary " + path +
                             " (missing ']}' terminator)");
  }
  return file;
}

/// Validate a shard set and return the row payloads in global instance
/// order. All the named merge errors live here, shared by both formats.
std::vector<std::string> merge_rows(const std::vector<ShardFile>& files) {
  if (files.empty()) {
    throw std::runtime_error("merge: no shard summaries to merge");
  }
  const std::size_t count = files[0].shard.count;
  const std::size_t total = files[0].total;
  for (const ShardFile& file : files) {
    if (file.shard.count != count || file.total != total) {
      throw std::runtime_error(
          "merge: inconsistent shard set: " + file.path + " is shard " +
          file.shard.label() + " of a " + std::to_string(file.total) +
          "-instance sweep, but " + files[0].path + " is shard " +
          files[0].shard.label() + " of " + std::to_string(total) +
          " instances");
    }
  }
  std::vector<const ShardFile*> by_index(count, nullptr);
  for (const ShardFile& file : files) {
    const ShardFile*& slot = by_index[file.shard.index];
    if (slot != nullptr) {
      throw std::runtime_error("merge: duplicate shard " + file.shard.label() +
                               " (" + slot->path + " and " + file.path + ")");
    }
    slot = &file;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (by_index[i] == nullptr) {
      throw std::runtime_error("merge: missing shard " + std::to_string(i) +
                               "/" + std::to_string(count));
    }
  }
  std::vector<std::string> ordered(total);
  std::vector<bool> filled(total, false);
  for (const ShardFile& file : files) {
    for (const auto& [g, payload] : file.rows) {
      if (g >= total) {
        throw std::runtime_error("merge: instance " + std::to_string(g) +
                                 " in " + file.path + " is out of range (sweep "
                                 "has " + std::to_string(total) + " instances)");
      }
      if (filled[g]) {
        throw std::runtime_error("merge: duplicate instance " +
                                 std::to_string(g) + " (second copy in " +
                                 file.path + ")");
      }
      filled[g] = true;
      ordered[g] = payload;
    }
  }
  for (std::size_t g = 0; g < total; ++g) {
    if (!filled[g]) {
      throw std::runtime_error("merge: missing instance " + std::to_string(g) +
                               " (gap in the shard outputs)");
    }
  }
  return ordered;
}

void write_or_throw(const std::string& out_path, const std::string& content) {
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("merge: cannot write " + out_path);
  out << content;
  if (!out) throw std::runtime_error("merge: failed writing " + out_path);
}

struct MergedSet {
  std::vector<std::string> ordered;  // row payloads in global order
  ShardSetInfo info;
};

template <typename Reader>
MergedSet merge_inputs(const std::vector<std::string>& inputs,
                       const Reader& read) {
  std::vector<ShardFile> files;
  files.reserve(inputs.size());
  for (const std::string& path : inputs) files.push_back(read(path));
  MergedSet merged;
  merged.ordered = merge_rows(files);
  merged.info = {files[0].shard.count, files[0].total};
  return merged;
}

std::string csv_content(const std::vector<std::string>& ordered) {
  std::string content = summary_csv_header() + "\n";
  for (const std::string& payload : ordered) content += payload + "\n";
  return content;
}

std::string json_content(const std::vector<std::string>& ordered) {
  std::string content = "[\n";
  for (std::size_t g = 0; g < ordered.size(); ++g) {
    content += "  {" + ordered[g] + "}" + (g + 1 < ordered.size() ? "," : "") + "\n";
  }
  content += "]\n";
  return content;
}

/// Quote-aware split of a CSV row's first `max_fields` fields.
std::vector<std::string> csv_head_fields(const std::string& row,
                                         std::size_t max_fields) {
  std::vector<std::string> out;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    const char c = row[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < row.size() && row[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"' && cur.empty()) {
      quoted = true;
    } else if (c == ',') {
      out.push_back(cur);
      cur.clear();
      if (out.size() == max_fields) return out;
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

/// Undo exp::json_escape (short escapes + \u00XX).
std::string json_unescape(const std::string& text) {
  std::string out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out += text[i];
      continue;
    }
    const char escape = text[++i];
    switch (escape) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'u':
        if (i + 4 < text.size()) {
          char* end = nullptr;
          const std::string hex = text.substr(i + 1, 4);
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end == hex.c_str() + hex.size()) {
            out += static_cast<char>(code);
            i += 4;
          }
        }
        break;
      default: out += escape;  // \" and backslash
    }
  }
  return out;
}

/// The value of a top-level string key in a JSON row payload.
std::string json_string_value(const std::string& payload,
                              const std::string& key) {
  const std::string marker = "\"" + key + "\": \"";
  const std::size_t at = payload.find(marker);
  if (at == std::string::npos) return "";
  std::string raw;
  for (std::size_t i = at + marker.size(); i < payload.size(); ++i) {
    if (payload[i] == '\\' && i + 1 < payload.size()) {
      raw += payload[i];
      raw += payload[i + 1];
      ++i;
      continue;
    }
    if (payload[i] == '"') break;
    raw += payload[i];
  }
  return json_unescape(raw);
}

/// The per-job files this shard set's instances would have written:
/// scenario + seed per row, through the same per_job_filename() the CLI
/// writer uses. `is_json` selects the payload syntax.
std::vector<std::string> expected_per_job_files(
    const std::vector<std::string>& ordered, bool is_json) {
  std::vector<std::string> expected;
  for (const std::string& row : ordered) {
    std::string scenario;
    std::string seed_text;
    if (is_json) {
      scenario = json_string_value(row, "scenario");
      const std::string marker = "\"seed\": ";
      const std::size_t at = row.find(marker);
      if (at == std::string::npos) continue;
      std::size_t i = at + marker.size();
      while (i < row.size() && row[i] >= '0' && row[i] <= '9') {
        seed_text += row[i++];
      }
    } else {
      const std::vector<std::string> fields = csv_head_fields(row, 3);
      if (fields.size() < 3) continue;
      scenario = fields[0];
      seed_text = fields[2];
    }
    std::uint64_t seed = 0;
    if (!parse_number(seed_text, &seed)) continue;
    expected.push_back(per_job_filename(scenario, seed));
  }
  return expected;
}

}  // namespace

std::string ShardSpec::label() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

ShardSpec parse_shard(const std::string& text) {
  const auto malformed = [&text]() {
    return std::invalid_argument("shard: malformed shard spec '" + text +
                                 "' (want INDEX/COUNT, e.g. 0/3)");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) throw malformed();
  ShardSpec shard;
  if (!parse_number(text.substr(0, slash), &shard.index) ||
      !parse_number(text.substr(slash + 1), &shard.count)) {
    throw malformed();
  }
  if (shard.count == 0) {
    throw std::invalid_argument("shard: shard count must be >= 1 in '" + text +
                                "'");
  }
  if (shard.index >= shard.count) {
    throw std::invalid_argument(
        "shard: shard index " + std::to_string(shard.index) +
        " out of range for shard count " + std::to_string(shard.count));
  }
  return shard;
}

std::vector<std::size_t> shard_instance_indices(std::size_t total,
                                                const ShardSpec& shard) {
  std::vector<std::size_t> indices;
  if (shard.count == 0) return indices;  // parse_shard rejects this upstream
  indices.reserve(total / shard.count + 1);
  for (std::size_t g = shard.index; g < total; g += shard.count) {
    indices.push_back(g);
  }
  return indices;
}

std::string shard_summary_filename(const ShardSpec& shard,
                                   const std::string& ext) {
  return "summary-shard" + std::to_string(shard.index) + "of" +
         std::to_string(shard.count) + "." + ext;
}

void write_shard_summary_csv(std::ostream& os, const ShardSummary& summary) {
  if (summary.instances.size() != summary.rows.size()) {
    throw std::invalid_argument("shard: instance/row count mismatch");
  }
  // Classic locale: instance indices and totals must never pick up
  // digit grouping from an embedding process's std::locale::global.
  const std::locale prev = os.imbue(std::locale::classic());
  os << kCsvHeaderPrefix << summary.shard.label()
     << " total=" << summary.total_instances << '\n';
  os << "instance," << summary_csv_header() << '\n';
  for (std::size_t k = 0; k < summary.rows.size(); ++k) {
    os << summary.instances[k] << ',' << summary_csv_row(summary.rows[k]) << '\n';
  }
  os.imbue(prev);
}

void write_shard_summary_json(std::ostream& os, const ShardSummary& summary) {
  if (summary.instances.size() != summary.rows.size()) {
    throw std::invalid_argument("shard: instance/row count mismatch");
  }
  const std::locale prev = os.imbue(std::locale::classic());
  os << "{\"shard\": \"" << summary.shard.label()
     << "\", \"total\": " << summary.total_instances << ", \"rows\": [\n";
  for (std::size_t k = 0; k < summary.rows.size(); ++k) {
    os << "  {\"instance\": " << summary.instances[k] << ", "
       << summary_json_row(summary.rows[k]) << "}"
       << (k + 1 < summary.rows.size() ? "," : "") << "\n";
  }
  os << "]}\n";
  os.imbue(prev);
}

namespace {

template <typename Fn>
bool save(const std::string& path, const Fn& write) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace

bool save_shard_summary_csv(const std::string& path, const ShardSummary& summary) {
  return save(path, [&](std::ostream& os) { write_shard_summary_csv(os, summary); });
}

bool save_shard_summary_json(const std::string& path,
                             const ShardSummary& summary) {
  return save(path,
              [&](std::ostream& os) { write_shard_summary_json(os, summary); });
}

ShardSetInfo merge_shard_summaries_csv(const std::vector<std::string>& inputs,
                                       const std::string& out_path) {
  const MergedSet merged = merge_inputs(inputs, read_shard_csv);
  write_or_throw(out_path, csv_content(merged.ordered));
  return merged.info;
}

ShardSetInfo merge_shard_summaries_json(const std::vector<std::string>& inputs,
                                        const std::string& out_path) {
  const MergedSet merged = merge_inputs(inputs, read_shard_json);
  write_or_throw(out_path, json_content(merged.ordered));
  return merged.info;
}

MergeReport merge_shard_dirs(const std::vector<std::string>& input_dirs,
                             const std::string& out_dir) {
  std::vector<std::string> csv_inputs;
  std::vector<std::string> json_inputs;
  std::vector<std::string> per_job;
  for (const std::string& dir : input_dirs) {
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
      throw std::runtime_error("merge: cannot read input directory '" + dir +
                               "': " + ec.message());
    }
    for (const auto& dirent : it) {
      if (!dirent.is_regular_file()) continue;
      const std::string name = dirent.path().filename().string();
      if (name.rfind("summary-shard", 0) == 0 &&
          name.find("of") != std::string::npos) {
        if (dirent.path().extension() == ".csv") {
          csv_inputs.push_back(dirent.path().string());
        } else if (dirent.path().extension() == ".json") {
          json_inputs.push_back(dirent.path().string());
        }
      } else if (name.rfind("jobs-", 0) == 0 &&
                 dirent.path().extension() == ".csv") {
        per_job.push_back(dirent.path().string());
      }
    }
  }
  // Directory iteration order is filesystem-dependent; sort so error
  // messages and copy order are stable.
  std::sort(csv_inputs.begin(), csv_inputs.end());
  std::sort(json_inputs.begin(), json_inputs.end());
  std::sort(per_job.begin(), per_job.end());
  if (csv_inputs.empty() && json_inputs.empty()) {
    std::string joined;
    for (const std::string& dir : input_dirs) {
      joined += (joined.empty() ? "" : ", ") + dir;
    }
    throw std::runtime_error("merge: no shard summaries found under " + joined);
  }

  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) {
    throw std::runtime_error("merge: cannot create output directory '" +
                             out_dir + "': " + ec.message());
  }

  MergeReport report;
  std::vector<std::string> expected_per_job;
  MergedSet csv_set;
  if (!csv_inputs.empty()) {
    csv_set = merge_inputs(csv_inputs, read_shard_csv);
    report.csv_merged = true;
    report.shard_count = csv_set.info.shard_count;
    report.total_instances = csv_set.info.total_instances;
    expected_per_job = expected_per_job_files(csv_set.ordered, false);
  }
  MergedSet json_set;
  if (!json_inputs.empty()) {
    json_set = merge_inputs(json_inputs, read_shard_json);
    // Both families must describe the same sweep — a mismatch means a
    // stale summary-shard*.json (or .csv) from an earlier run is mixed
    // into a reused output directory.
    if (report.csv_merged &&
        (json_set.info.shard_count != csv_set.info.shard_count ||
         json_set.info.total_instances != csv_set.info.total_instances)) {
      throw std::runtime_error(
          "merge: CSV and JSON shard families disagree (" +
          std::to_string(csv_set.info.shard_count) + " shards/" +
          std::to_string(csv_set.info.total_instances) + " instances vs " +
          std::to_string(json_set.info.shard_count) + " shards/" +
          std::to_string(json_set.info.total_instances) +
          " instances) — stale shard files from an earlier sweep in the "
          "inputs?");
    }
    report.json_merged = true;
    report.shard_count = json_set.info.shard_count;
    report.total_instances = json_set.info.total_instances;
    if (expected_per_job.empty()) {
      expected_per_job = expected_per_job_files(json_set.ordered, true);
    }
  }
  // Per-job files must belong to this shard set's instances (a stray
  // jobs-*.csv in a reused shard directory would otherwise ride into
  // the merged output and break its equivalence to an unsharded run),
  // and duplicate basenames among the SOURCES mean two shards produced
  // the same instance. All checks run before anything is written, so a
  // failing merge never leaves valid-looking partial output behind.
  std::sort(expected_per_job.begin(), expected_per_job.end());
  expected_per_job.erase(
      std::unique(expected_per_job.begin(), expected_per_job.end()),
      expected_per_job.end());
  std::map<std::string, std::string> seen_basenames;
  for (const std::string& src : per_job) {
    const std::string basename = fs::path(src).filename().string();
    if (!std::binary_search(expected_per_job.begin(), expected_per_job.end(),
                            basename)) {
      throw std::runtime_error(
          "merge: unexpected per-job file " + src +
          " (no instance of this shard set writes it — stale file from an "
          "earlier sweep?)");
    }
    const auto [it, inserted] = seen_basenames.emplace(basename, src);
    if (!inserted) {
      throw std::runtime_error("merge: duplicate per-job file " + basename +
                               " (" + it->second + " and " + src +
                               " — two shards produced the same instance?)");
    }
  }
  // The converse, only when the shards produced per-job output at all
  // (running with --per_job=false or --samples legitimately writes
  // none): once any jobs-*.csv is present, every instance's file must
  // be — a partial set means a shard's output was lost in transit, and
  // the merged directory would silently stop matching an unsharded run.
  if (!per_job.empty()) {
    for (const std::string& name : expected_per_job) {
      if (seen_basenames.find(name) == seen_basenames.end()) {
        throw std::runtime_error(
            "merge: missing per-job file " + name +
            " (this shard set's instances wrote per-job output, but not all "
            "of it reached the inputs)");
      }
    }
  }

  // Everything validated; write the merged artifacts. The destination is
  // fair game to overwrite: re-running a merge into the same out_dir
  // (a retry, or after re-running one shard) must be idempotent.
  if (report.csv_merged) {
    write_or_throw(out_dir + "/summary.csv", csv_content(csv_set.ordered));
  }
  if (report.json_merged) {
    write_or_throw(out_dir + "/summary.json", json_content(json_set.ordered));
  }
  for (const std::string& src : per_job) {
    const std::string dest = out_dir + "/" + fs::path(src).filename().string();
    fs::copy_file(src, dest, fs::copy_options::overwrite_existing, ec);
    if (ec) {
      throw std::runtime_error("merge: cannot copy " + src + " to " + dest +
                               ": " + ec.message());
    }
    ++report.per_job_files_copied;
  }
  return report;
}

}  // namespace rlbf::exp
