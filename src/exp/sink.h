// Structured result sinks for the experiment engine.
//
// Two artifact shapes cover every study in the repo:
//   * a summary table — one row per scenario instance (or per evaluated
//     protocol) with the headline metrics the paper reports;
//   * a per-job table — one row per JobResult of a single run, for
//     distribution-level analysis.
// Both render to CSV and the summary also to JSON. All numeric
// formatting goes through one fixed-format helper, so output is
// byte-identical across runs and thread counts for equal inputs — the
// determinism tests diff these bytes directly.
#pragma once

#include <cmath>
#include <ostream>
#include <string>
#include <vector>

#include "exp/scenario.h"

namespace rlbf::exp {

/// One summary line: a scenario run or a protocol evaluation.
struct SummaryRow {
  std::string scenario;  // instance name
  std::string label;     // human-readable configuration
  std::uint64_t seed = 0;
  std::size_t jobs = 0;
  double bsld = 0.0;  // mean bounded slowdown (the headline metric)
  /// NaN marks "not measured in this mode" and renders empty: full-trace
  /// runs fill the four run metrics, protocol evaluations fill the CI.
  double avg_wait = std::nan("");     // seconds
  double utilization = std::nan("");
  double backfilled = std::nan("");   // whole counts, stored exactly
  double killed = std::nan("");
  double ci_lo = std::nan("");        // 95% bootstrap CI
  double ci_hi = std::nan("");
};

/// Collapse a scenario run into its summary line.
SummaryRow summarize(const ScenarioRun& run);

/// Summary line for a sampled-protocol evaluation of `spec`.
SummaryRow summarize(const ScenarioSpec& spec, const core::EvalResult& result,
                     std::uint64_t seed);

/// Fixed-format numeric rendering used by every sink ("%.6g"; empty
/// string for NaN). Deterministic for equal doubles.
std::string format_metric(double value);

/// Whole-count rendering ("%.0f"; empty string for NaN).
std::string format_count(double value);

void write_summary_csv(std::ostream& os, const std::vector<SummaryRow>& rows);
void write_summary_json(std::ostream& os, const std::vector<SummaryRow>& rows);
void write_per_job_csv(std::ostream& os, const ScenarioRun& run);

/// File variants; return false (and write nothing further) on I/O error.
bool save_summary_csv(const std::string& path, const std::vector<SummaryRow>& rows);
bool save_summary_json(const std::string& path, const std::vector<SummaryRow>& rows);
bool save_per_job_csv(const std::string& path, const ScenarioRun& run);

/// Turn an instance name ("sdsc-easy/load=0.5,policy=SJF") into a safe
/// file stem: [A-Za-z0-9._-] kept, everything else mapped to '_'.
std::string sanitize_filename(const std::string& name);

}  // namespace rlbf::exp
