// Structured result sinks for the experiment engine.
//
// Two artifact shapes cover every study in the repo:
//   * a summary table — one row per scenario instance (or per evaluated
//     protocol) with the headline metrics the paper reports;
//   * a per-job table — one row per JobResult of a single run, for
//     distribution-level analysis.
// Both render to CSV and the summary also to JSON. All numeric
// formatting goes through one fixed-format helper, so output is
// byte-identical across runs and thread counts for equal inputs — the
// determinism tests diff these bytes directly.
#pragma once

#include <cmath>
#include <ostream>
#include <string>
#include <vector>

#include "exp/scenario.h"

namespace rlbf::exp {

/// One summary line: a scenario run or a protocol evaluation.
struct SummaryRow {
  std::string scenario;  // instance name
  std::string label;     // human-readable configuration
  std::uint64_t seed = 0;
  std::size_t jobs = 0;
  double bsld = 0.0;  // mean bounded slowdown (the headline metric)
  /// NaN marks "not measured in this mode" and renders empty: full-trace
  /// runs fill the four run metrics, protocol evaluations fill the CI.
  double avg_wait = std::nan("");     // seconds
  double utilization = std::nan("");
  double backfilled = std::nan("");   // whole counts, stored exactly
  double killed = std::nan("");
  double ci_lo = std::nan("");        // 95% bootstrap CI
  double ci_hi = std::nan("");
};

/// Collapse a scenario run into its summary line.
SummaryRow summarize(const ScenarioRun& run);

/// Summary line for a sampled-protocol evaluation of `spec`.
SummaryRow summarize(const ScenarioSpec& spec, const core::EvalResult& result,
                     std::uint64_t seed);

/// Fixed-format numeric rendering used by every sink ("%.6g"; empty
/// string for NaN). Deterministic for equal doubles and pinned to the C
/// locale (std::to_chars), so LC_NUMERIC on the host cannot change it.
std::string format_metric(double value);

/// Whole-count rendering ("%.0f"; empty string for NaN). C locale.
std::string format_count(double value);

/// JSON string-content escaping: quotes, backslashes, and every control
/// byte (\n, \t, \r as short escapes, the rest as \u00XX) — a hostile
/// scenario label can never emit invalid JSON.
std::string json_escape(const std::string& field);

/// One canonical rendering per summary row, shared by the plain writers
/// below and the shard-tagged writers (exp/shard.h) — merged shard
/// output is byte-identical to an unsharded run by construction. The
/// JSON row carries no surrounding "  {…}," decoration.
std::string summary_csv_header();
std::string summary_csv_row(const SummaryRow& row);
std::string summary_json_row(const SummaryRow& row);

void write_summary_csv(std::ostream& os, const std::vector<SummaryRow>& rows);
void write_summary_json(std::ostream& os, const std::vector<SummaryRow>& rows);
void write_per_job_csv(std::ostream& os, const ScenarioRun& run);

/// File variants; return false (and write nothing further) on I/O error.
bool save_summary_csv(const std::string& path, const std::vector<SummaryRow>& rows);
bool save_summary_json(const std::string& path, const std::vector<SummaryRow>& rows);
bool save_per_job_csv(const std::string& path, const ScenarioRun& run);

/// Turn an instance name ("sdsc-easy/load=0.5,policy=SJF") into a safe
/// file stem: [A-Za-z0-9._-] kept, everything else mapped to '_'.
std::string sanitize_filename(const std::string& name);

/// The canonical per-job CSV filename for one (scenario instance, seed)
/// run — shared by the CLI writer and the shard merge so merged
/// directories validate against exactly what a run would have written.
std::string per_job_filename(const std::string& scenario, std::uint64_t seed);

}  // namespace rlbf::exp
