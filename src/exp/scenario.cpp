#include "exp/scenario.h"

#include <algorithm>
#include <cctype>
#include <list>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "core/rl_backfill.h"
#include "exp/config.h"
#include "model/train.h"
#include "obs/metrics.h"
#include "workload/presets.h"

namespace rlbf::exp {

namespace {

// Decorrelates the heavy-tail injection stream from the workload
// generator, which consumes the raw seed.
constexpr std::uint64_t kHeavyTailSalt = 0x7ea11f00dull;

}  // namespace

std::string ScenarioSpec::label() const {
  std::ostringstream os;
  os << workload << " " << scheduler.label();
  if (machine_procs > 0) os << " p" << machine_procs;
  if (load_factor != 1.0) os << " x" << load_factor;
  if (heavy_tail_prob > 0.0) os << " heavytail";
  if (inject_flurry) os << " flurry";
  if (scrub_flurries) os << " scrubbed";
  if (kill_exceeding_request) os << " kill";
  return os.str();
}

swf::Trace build_trace(const ScenarioSpec& spec, std::uint64_t seed,
                       TraceBuildInfo* info) {
  const auto targets = workload::all_targets();
  const auto it = std::find_if(
      targets.begin(), targets.end(),
      [&](const workload::PresetTargets& t) { return t.name == spec.workload; });
  if (it == targets.end()) {
    std::string known;
    for (const auto& t : targets) known += (known.empty() ? "" : ", ") + t.name;
    throw std::invalid_argument("unknown workload '" + spec.workload +
                                "' (known: " + known + ")");
  }
  workload::PresetTargets targets_used = *it;
  if (spec.machine_procs > 0) targets_used.machine_procs = spec.machine_procs;
  swf::Trace trace = workload::make_preset(targets_used, spec.trace_jobs, seed);
  if (spec.load_factor != 1.0) {
    trace = workload::scale_load(trace, spec.load_factor);
  }
  if (spec.heavy_tail_prob > 0.0) {
    workload::HeavyTailParams params;
    params.prob = spec.heavy_tail_prob;
    params.alpha = spec.heavy_tail_alpha;
    trace = workload::inject_heavy_tail(trace, params, seed ^ kHeavyTailSalt);
  }
  if (spec.inject_flurry) {
    trace = workload::inject_flurry(trace, spec.flurry_user, spec.flurry_start,
                                    spec.flurry_count, spec.flurry_gap,
                                    spec.flurry_run);
  }
  if (spec.scrub_flurries) {
    trace = workload::remove_flurries(trace, {}, info ? &info->flurry : nullptr);
  }
  return trace;
}

std::string trace_cache_key(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "workload=" << spec.workload << " jobs=" << spec.trace_jobs
     << " procs=" << spec.machine_procs << " load=" << format_double_exact(spec.load_factor)
     << " tail=" << format_double_exact(spec.heavy_tail_prob)
     << " tail_alpha=" << format_double_exact(spec.heavy_tail_alpha)
     << " flurry=" << (spec.inject_flurry ? 1 : 0)
     << " flurry_user=" << spec.flurry_user
     << " flurry_start=" << spec.flurry_start
     << " flurry_count=" << spec.flurry_count
     << " flurry_gap=" << spec.flurry_gap << " flurry_run=" << spec.flurry_run
     << " scrub=" << (spec.scrub_flurries ? 1 : 0);
  return os.str();
}

namespace {

// Process-wide memoization of build_trace over (workload-construction
// fields, seed). Sweeps expand one base spec into many instances that
// differ only in scheduler configuration, and the training executor
// resolves its traces through the same path — without the cache every
// instance regenerates an identical trace. LRU-bounded; traces are
// immutable once published, so one shared copy is safe at any
// concurrency.
class TraceCache {
 public:
  static constexpr std::size_t kMaxEntries = 32;

  struct Entry {
    std::shared_ptr<const swf::Trace> trace;
    TraceBuildInfo info;
  };

  static TraceCache& instance() {
    static TraceCache* cache = new TraceCache();
    return *cache;
  }

  Entry get(const ScenarioSpec& spec, std::uint64_t seed) {
    const std::string key = trace_cache_key(spec) + " seed=" + std::to_string(seed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = map_.find(key);
      if (it != map_.end()) {
        hits_.add(1);
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return it->second.entry;
      }
      misses_.add(1);
    }
    // Build outside the lock so distinct traces construct in parallel. A
    // rare concurrent double-build of the same key is harmless: both
    // results are identical and only one is published.
    Entry built;
    TraceBuildInfo info;
    built.trace = std::make_shared<const swf::Trace>(build_trace(spec, seed, &info));
    built.info = info;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.entry;
    }
    lru_.push_front(key);
    map_.emplace(key, Slot{built, lru_.begin()});
    if (map_.size() > kMaxEntries) {
      map_.erase(lru_.back());
      lru_.pop_back();
      evictions_.add(1);
    }
    return built;
  }

  TraceCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    TraceCacheStats s;
    s.hits = hits_.value();
    s.misses = misses_.value();
    s.evictions = evictions_.value();
    s.entries = map_.size();
    return s;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
    hits_.reset();
    misses_.reset();
    evictions_.reset();
  }

 private:
  // Counts live in the metrics registry so --metrics_out and bench see
  // them; cache operations are rare (one per trace build/reuse), so
  // unlike hot-loop hooks they count unconditionally.
  TraceCache()
      : hits_(obs::counter("exp.trace_cache.hits")),
        misses_(obs::counter("exp.trace_cache.misses")),
        evictions_(obs::counter("exp.trace_cache.evictions")) {}

  struct Slot {
    Entry entry;
    std::list<std::string>::iterator lru_pos;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Slot> map_;
  std::list<std::string> lru_;  // front = most recently used
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
};

}  // namespace

std::shared_ptr<const swf::Trace> build_trace_cached(const ScenarioSpec& spec,
                                                     std::uint64_t seed,
                                                     TraceBuildInfo* info) {
  TraceCache::Entry entry = TraceCache::instance().get(spec, seed);
  if (info != nullptr) *info = entry.info;
  return entry.trace;
}

TraceCacheStats trace_cache_stats() { return TraceCache::instance().stats(); }

void clear_trace_cache() { TraceCache::instance().clear(); }

sim::SimulationOptions sim_options(const ScenarioSpec& spec) {
  sim::SimulationOptions options;
  options.kill_exceeding_request = spec.kill_exceeding_request;
  options.max_backfills_per_opportunity = spec.max_backfills;
  return options;
}

namespace {

sched::SchedulerSpec scheduler_for_seed(const ScenarioSpec& spec,
                                        std::uint64_t seed) {
  sched::SchedulerSpec scheduler = spec.scheduler;
  if (scheduler.estimate == sched::EstimateKind::Noisy &&
      scheduler.noise_seed == 0) {
    scheduler.noise_seed = seed;
  }
  return scheduler;
}

/// The scheduler a spec describes plus, for trained-agent specs, the
/// resolved agent keeping the injected RlBackfillChooser valid.
struct ActiveScheduler {
  std::shared_ptr<const core::Agent> agent;  // null for heuristic specs
  std::unique_ptr<sched::ConfiguredScheduler> scheduler;
};

ActiveScheduler make_scheduler(const ScenarioSpec& spec, std::uint64_t seed) {
  ActiveScheduler active;
  const sched::SchedulerSpec scheduler = scheduler_for_seed(spec, seed);
  if (scheduler.uses_agent()) {
    active.agent = model::resolve_agent(scheduler.agent);
    active.scheduler = std::make_unique<sched::ConfiguredScheduler>(
        scheduler, std::make_unique<core::RlBackfillChooser>(*active.agent));
  } else {
    active.scheduler = std::make_unique<sched::ConfiguredScheduler>(scheduler);
  }
  return active;
}

}  // namespace

ScenarioRun run_scenario(const ScenarioSpec& spec, std::uint64_t seed) {
  const std::shared_ptr<const swf::Trace> trace = build_trace_cached(spec, seed);
  const ActiveScheduler active = make_scheduler(spec, seed);
  sched::ScheduleOutcome outcome = sched::run_schedule(
      *trace, active.scheduler->policy(), active.scheduler->estimator(),
      active.scheduler->chooser(), sim_options(spec));
  ScenarioRun run;
  run.scenario = spec.name;
  run.label = spec.label();
  run.seed = seed;
  run.jobs = trace->size();
  run.metrics = outcome.metrics;
  run.results = std::move(outcome.results);
  return run;
}

core::EvalResult evaluate_scenario(const ScenarioSpec& spec,
                                   const core::EvalProtocol& protocol) {
  const std::shared_ptr<const swf::Trace> trace =
      build_trace_cached(spec, protocol.seed);
  core::EvalProtocol effective = protocol;
  effective.options = sim_options(spec);
  const ActiveScheduler active = make_scheduler(spec, protocol.seed);
  return core::evaluate(*trace, active.scheduler->policy(),
                        active.scheduler->estimator(),
                        active.scheduler->chooser(), effective);
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("scenario name must be non-empty");
  }
  if (contains(spec.name)) {
    throw std::invalid_argument("duplicate scenario name: " + spec.name);
  }
  specs_.push_back(std::move(spec));
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return std::any_of(specs_.begin(), specs_.end(),
                     [&](const ScenarioSpec& s) { return s.name == name; });
}

const ScenarioSpec& ScenarioRegistry::get(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return spec;
  }
  std::string known;
  for (const auto& spec : specs_) {
    known += (known.empty() ? "" : ", ") + spec.name;
  }
  throw std::invalid_argument("unknown scenario '" + name +
                              "' (known: " + known + ")");
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(spec.name);
  return out;
}

namespace {

ScenarioSpec base_scenario(std::string name, std::string description) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.scheduler = {"FCFS", sched::BackfillKind::Easy,
                    sched::EstimateKind::RequestTime};
  return spec;
}

// The built-in catalog, seeded from the repo's bench/example programs so
// every previously hard-coded study is now one `--scenario=` away.
void register_builtins(ScenarioRegistry& registry) {
  {
    auto s = base_scenario("sdsc-easy",
                           "Paper baseline: FCFS+EASY on the SDSC-SP2-like trace");
    registry.add(s);
  }
  {
    auto s = base_scenario("sdsc-easy-ar",
                           "Oracle estimates: FCFS+EASY-AR on SDSC-SP2");
    s.scheduler.estimate = sched::EstimateKind::ActualRuntime;
    registry.add(s);
  }
  {
    auto s = base_scenario("sdsc-conservative",
                           "Strict no-delay backfilling: FCFS+CONS on SDSC-SP2");
    s.scheduler.backfill = sched::BackfillKind::Conservative;
    registry.add(s);
  }
  {
    auto s = base_scenario("sdsc-sjf-easy",
                           "Shortest-job-first base policy: SJF+EASY on SDSC-SP2");
    s.scheduler.policy = "SJF";
    registry.add(s);
  }
  {
    auto s = base_scenario("hpc2n-easy", "FCFS+EASY on the HPC2N-like trace");
    s.workload = "HPC2N";
    registry.add(s);
  }
  {
    auto s = base_scenario("lublin1-easy",
                           "FCFS+EASY on the synthetic Lublin-1 trace (AR only)");
    s.workload = "Lublin-1";
    registry.add(s);
  }
  {
    auto s = base_scenario("lublin2-f1-easy",
                           "Learned-priority base policy: F1+EASY on Lublin-2");
    s.workload = "Lublin-2";
    s.scheduler.policy = "F1";
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-lowload", "ablation_load's 0.5x arrival-rate operating point");
    s.load_factor = 0.5;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-highload", "ablation_load's 1.5x arrival-rate operating point");
    s.load_factor = 1.5;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-flurry",
        "ablation_flurry's injected 500-job single-user burst on SDSC-SP2");
    s.inject_flurry = true;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-flurry-scrubbed",
        "sdsc-flurry after archive-style flurry scrubbing (remove_flurries)");
    s.inject_flurry = true;
    s.scrub_flurries = true;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-noisy20", "Figure-1 style +20% noisy runtime predictions");
    s.scheduler.estimate = sched::EstimateKind::Noisy;
    s.scheduler.noise_fraction = 0.2;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-heavytail",
        "5% of runtimes stretched by Pareto(1.5) factors (requests kept)");
    s.heavy_tail_prob = 0.05;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-heavytail-kill",
        "Heavy-tail overruns under the paper's kill-at-request contract");
    s.heavy_tail_prob = 0.05;
    s.kill_exceeding_request = true;
    registry.add(s);
  }
  // ---- trained-agent scenarios (the model store resolves the agent
  // reference: a training-spec name, a store key, or a model file path;
  // train the referenced spec first with `rlbf_run train`). ----
  {
    auto s = base_scenario(
        "sdsc-rlbf", "RL backfilling on SDSC-SP2 (agent from spec 'sdsc-fcfs')");
    s.scheduler.agent = "sdsc-fcfs";
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-sjf-rlbf",
        "RL backfilling under the SJF base policy (agent 'sdsc-sjf')");
    s.scheduler.policy = "SJF";
    s.scheduler.agent = "sdsc-sjf";
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "hpc2n-rlbf-transfer",
        "Table-5 transfer: the SDSC-trained agent deployed on HPC2N");
    s.workload = "HPC2N";
    s.scheduler.agent = "sdsc-fcfs";
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-tiny-rlbf",
        "CI smoke: the tiny 'sdsc-tiny' agent on a 2000-job SDSC prefix");
    s.trace_jobs = 2000;
    s.scheduler.agent = "sdsc-tiny";
    registry.add(s);
  }
  // ---- ablation-arm evaluations: every registered "abl-*" training arm
  // gets a same-named scenario deploying its agent on its own workload
  // under its base policy, so `rlbf_run run --scenario=abl-...` (or an
  // `agent=` sweep axis) drives any ablation cell after
  // `rlbf_run train --spec=abl-...`. ----
  for (const std::string& arm_name : model::ablation_arm_names()) {
    const model::TrainingSpec& arm = model::find_training_spec(arm_name);
    // Inherit the arm's FULL workload-construction spec (an arm trained
    // on a transformed trace must be evaluated on the same recipe), then
    // override identity and scheduler.
    ScenarioSpec s = arm.workload;
    s.name = arm_name;
    s.description = "Ablation arm evaluation: " + arm.description;
    s.scheduler = {arm.trainer.base_policy, sched::BackfillKind::Easy,
                   sched::EstimateKind::RequestTime};
    s.scheduler.agent = arm_name;
    registry.add(s);
  }
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

const ScenarioSpec& find_scenario(const std::string& name) {
  return ScenarioRegistry::instance().get(name);
}

std::vector<std::string> scenario_names() {
  return ScenarioRegistry::instance().names();
}

sched::BackfillKind parse_backfill_kind(const std::string& name) {
  std::string n = name;
  std::transform(n.begin(), n.end(), n.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (n == "none" || n == "nobf") return sched::BackfillKind::None;
  if (n == "easy") return sched::BackfillKind::Easy;
  if (n == "easy-sjf") return sched::BackfillKind::EasySjf;
  if (n == "easy-bf") return sched::BackfillKind::EasyBestFit;
  if (n == "easy-wf") return sched::BackfillKind::EasyWorstFit;
  if (n == "cons" || n == "conservative") return sched::BackfillKind::Conservative;
  if (n == "slack") return sched::BackfillKind::Slack;
  throw std::invalid_argument(
      "unknown backfill kind '" + name +
      "' (known: none, easy, easy-sjf, easy-bf, easy-wf, conservative, slack)");
}

std::string backfill_kind_name(sched::BackfillKind kind) {
  switch (kind) {
    case sched::BackfillKind::None: return "none";
    case sched::BackfillKind::Easy: return "easy";
    case sched::BackfillKind::EasySjf: return "easy-sjf";
    case sched::BackfillKind::EasyBestFit: return "easy-bf";
    case sched::BackfillKind::EasyWorstFit: return "easy-wf";
    case sched::BackfillKind::Conservative: return "conservative";
    case sched::BackfillKind::Slack: return "slack";
  }
  return "?";
}

sched::EstimateKind parse_estimate_kind(const std::string& name) {
  std::string n = name;
  std::transform(n.begin(), n.end(), n.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (n == "request" || n == "rt") return sched::EstimateKind::RequestTime;
  if (n == "actual" || n == "ar") return sched::EstimateKind::ActualRuntime;
  if (n == "noisy") return sched::EstimateKind::Noisy;
  throw std::invalid_argument("unknown estimate kind '" + name +
                              "' (known: request, actual, noisy)");
}

std::string estimate_kind_name(sched::EstimateKind kind) {
  switch (kind) {
    case sched::EstimateKind::RequestTime: return "request";
    case sched::EstimateKind::ActualRuntime: return "actual";
    case sched::EstimateKind::Noisy: return "noisy";
  }
  return "?";
}

}  // namespace rlbf::exp
