#include "exp/scenario.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "workload/presets.h"

namespace rlbf::exp {

namespace {

// Decorrelates the heavy-tail injection stream from the workload
// generator, which consumes the raw seed.
constexpr std::uint64_t kHeavyTailSalt = 0x7ea11f00dull;

}  // namespace

std::string ScenarioSpec::label() const {
  std::ostringstream os;
  os << workload << " " << scheduler.label();
  if (machine_procs > 0) os << " p" << machine_procs;
  if (load_factor != 1.0) os << " x" << load_factor;
  if (heavy_tail_prob > 0.0) os << " heavytail";
  if (inject_flurry) os << " flurry";
  if (scrub_flurries) os << " scrubbed";
  if (kill_exceeding_request) os << " kill";
  return os.str();
}

swf::Trace build_trace(const ScenarioSpec& spec, std::uint64_t seed,
                       TraceBuildInfo* info) {
  const auto targets = workload::all_targets();
  const auto it = std::find_if(
      targets.begin(), targets.end(),
      [&](const workload::PresetTargets& t) { return t.name == spec.workload; });
  if (it == targets.end()) {
    std::string known;
    for (const auto& t : targets) known += (known.empty() ? "" : ", ") + t.name;
    throw std::invalid_argument("unknown workload '" + spec.workload +
                                "' (known: " + known + ")");
  }
  workload::PresetTargets targets_used = *it;
  if (spec.machine_procs > 0) targets_used.machine_procs = spec.machine_procs;
  swf::Trace trace = workload::make_preset(targets_used, spec.trace_jobs, seed);
  if (spec.load_factor != 1.0) {
    trace = workload::scale_load(trace, spec.load_factor);
  }
  if (spec.heavy_tail_prob > 0.0) {
    workload::HeavyTailParams params;
    params.prob = spec.heavy_tail_prob;
    params.alpha = spec.heavy_tail_alpha;
    trace = workload::inject_heavy_tail(trace, params, seed ^ kHeavyTailSalt);
  }
  if (spec.inject_flurry) {
    trace = workload::inject_flurry(trace, spec.flurry_user, spec.flurry_start,
                                    spec.flurry_count, spec.flurry_gap,
                                    spec.flurry_run);
  }
  if (spec.scrub_flurries) {
    trace = workload::remove_flurries(trace, {}, info ? &info->flurry : nullptr);
  }
  return trace;
}

sim::SimulationOptions sim_options(const ScenarioSpec& spec) {
  sim::SimulationOptions options;
  options.kill_exceeding_request = spec.kill_exceeding_request;
  options.max_backfills_per_opportunity = spec.max_backfills;
  return options;
}

namespace {

sched::SchedulerSpec scheduler_for_seed(const ScenarioSpec& spec,
                                        std::uint64_t seed) {
  sched::SchedulerSpec scheduler = spec.scheduler;
  if (scheduler.estimate == sched::EstimateKind::Noisy &&
      scheduler.noise_seed == 0) {
    scheduler.noise_seed = seed;
  }
  return scheduler;
}

}  // namespace

ScenarioRun run_scenario(const ScenarioSpec& spec, std::uint64_t seed) {
  const swf::Trace trace = build_trace(spec, seed);
  const sched::ConfiguredScheduler scheduler(scheduler_for_seed(spec, seed));
  sched::ScheduleOutcome outcome =
      sched::run_schedule(trace, scheduler.policy(), scheduler.estimator(),
                          scheduler.chooser(), sim_options(spec));
  ScenarioRun run;
  run.scenario = spec.name;
  run.label = spec.label();
  run.seed = seed;
  run.jobs = trace.size();
  run.metrics = outcome.metrics;
  run.results = std::move(outcome.results);
  return run;
}

core::EvalResult evaluate_scenario(const ScenarioSpec& spec,
                                   const core::EvalProtocol& protocol) {
  const swf::Trace trace = build_trace(spec, protocol.seed);
  core::EvalProtocol effective = protocol;
  effective.options = sim_options(spec);
  return core::evaluate_spec(trace, scheduler_for_seed(spec, protocol.seed),
                             effective);
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("scenario name must be non-empty");
  }
  if (contains(spec.name)) {
    throw std::invalid_argument("duplicate scenario name: " + spec.name);
  }
  specs_.push_back(std::move(spec));
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return std::any_of(specs_.begin(), specs_.end(),
                     [&](const ScenarioSpec& s) { return s.name == name; });
}

const ScenarioSpec& ScenarioRegistry::get(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return spec;
  }
  std::string known;
  for (const auto& spec : specs_) {
    known += (known.empty() ? "" : ", ") + spec.name;
  }
  throw std::invalid_argument("unknown scenario '" + name +
                              "' (known: " + known + ")");
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(spec.name);
  return out;
}

namespace {

ScenarioSpec base_scenario(std::string name, std::string description) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.scheduler = {"FCFS", sched::BackfillKind::Easy,
                    sched::EstimateKind::RequestTime};
  return spec;
}

// The built-in catalog, seeded from the repo's bench/example programs so
// every previously hard-coded study is now one `--scenario=` away.
void register_builtins(ScenarioRegistry& registry) {
  {
    auto s = base_scenario("sdsc-easy",
                           "Paper baseline: FCFS+EASY on the SDSC-SP2-like trace");
    registry.add(s);
  }
  {
    auto s = base_scenario("sdsc-easy-ar",
                           "Oracle estimates: FCFS+EASY-AR on SDSC-SP2");
    s.scheduler.estimate = sched::EstimateKind::ActualRuntime;
    registry.add(s);
  }
  {
    auto s = base_scenario("sdsc-conservative",
                           "Strict no-delay backfilling: FCFS+CONS on SDSC-SP2");
    s.scheduler.backfill = sched::BackfillKind::Conservative;
    registry.add(s);
  }
  {
    auto s = base_scenario("sdsc-sjf-easy",
                           "Shortest-job-first base policy: SJF+EASY on SDSC-SP2");
    s.scheduler.policy = "SJF";
    registry.add(s);
  }
  {
    auto s = base_scenario("hpc2n-easy", "FCFS+EASY on the HPC2N-like trace");
    s.workload = "HPC2N";
    registry.add(s);
  }
  {
    auto s = base_scenario("lublin1-easy",
                           "FCFS+EASY on the synthetic Lublin-1 trace (AR only)");
    s.workload = "Lublin-1";
    registry.add(s);
  }
  {
    auto s = base_scenario("lublin2-f1-easy",
                           "Learned-priority base policy: F1+EASY on Lublin-2");
    s.workload = "Lublin-2";
    s.scheduler.policy = "F1";
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-lowload", "ablation_load's 0.5x arrival-rate operating point");
    s.load_factor = 0.5;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-highload", "ablation_load's 1.5x arrival-rate operating point");
    s.load_factor = 1.5;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-flurry",
        "ablation_flurry's injected 500-job single-user burst on SDSC-SP2");
    s.inject_flurry = true;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-flurry-scrubbed",
        "sdsc-flurry after archive-style flurry scrubbing (remove_flurries)");
    s.inject_flurry = true;
    s.scrub_flurries = true;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-noisy20", "Figure-1 style +20% noisy runtime predictions");
    s.scheduler.estimate = sched::EstimateKind::Noisy;
    s.scheduler.noise_fraction = 0.2;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-heavytail",
        "5% of runtimes stretched by Pareto(1.5) factors (requests kept)");
    s.heavy_tail_prob = 0.05;
    registry.add(s);
  }
  {
    auto s = base_scenario(
        "sdsc-heavytail-kill",
        "Heavy-tail overruns under the paper's kill-at-request contract");
    s.heavy_tail_prob = 0.05;
    s.kill_exceeding_request = true;
    registry.add(s);
  }
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

const ScenarioSpec& find_scenario(const std::string& name) {
  return ScenarioRegistry::instance().get(name);
}

std::vector<std::string> scenario_names() {
  return ScenarioRegistry::instance().names();
}

sched::BackfillKind parse_backfill_kind(const std::string& name) {
  std::string n = name;
  std::transform(n.begin(), n.end(), n.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (n == "none" || n == "nobf") return sched::BackfillKind::None;
  if (n == "easy") return sched::BackfillKind::Easy;
  if (n == "easy-sjf") return sched::BackfillKind::EasySjf;
  if (n == "easy-bf") return sched::BackfillKind::EasyBestFit;
  if (n == "easy-wf") return sched::BackfillKind::EasyWorstFit;
  if (n == "cons" || n == "conservative") return sched::BackfillKind::Conservative;
  if (n == "slack") return sched::BackfillKind::Slack;
  throw std::invalid_argument(
      "unknown backfill kind '" + name +
      "' (known: none, easy, easy-sjf, easy-bf, easy-wf, conservative, slack)");
}

std::string backfill_kind_name(sched::BackfillKind kind) {
  switch (kind) {
    case sched::BackfillKind::None: return "none";
    case sched::BackfillKind::Easy: return "easy";
    case sched::BackfillKind::EasySjf: return "easy-sjf";
    case sched::BackfillKind::EasyBestFit: return "easy-bf";
    case sched::BackfillKind::EasyWorstFit: return "easy-wf";
    case sched::BackfillKind::Conservative: return "conservative";
    case sched::BackfillKind::Slack: return "slack";
  }
  return "?";
}

sched::EstimateKind parse_estimate_kind(const std::string& name) {
  std::string n = name;
  std::transform(n.begin(), n.end(), n.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (n == "request" || n == "rt") return sched::EstimateKind::RequestTime;
  if (n == "actual" || n == "ar") return sched::EstimateKind::ActualRuntime;
  if (n == "noisy") return sched::EstimateKind::Noisy;
  throw std::invalid_argument("unknown estimate kind '" + name +
                              "' (known: request, actual, noisy)");
}

std::string estimate_kind_name(sched::EstimateKind kind) {
  switch (kind) {
    case sched::EstimateKind::RequestTime: return "request";
    case sched::EstimateKind::ActualRuntime: return "actual";
    case sched::EstimateKind::Noisy: return "noisy";
  }
  return "?";
}

}  // namespace rlbf::exp
