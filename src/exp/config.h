// One `--flag=value` command-line parser for every binary in the repo.
//
// Benches, examples, and the `rlbf_run` driver all take the same flag
// style; before this subsystem each of them carried its own copy of the
// parsing loop. ArgParser binds flags to caller-owned variables (so a
// config struct parses itself by binding its members), renders a usage
// block from the registered help strings, and reports unknown flags and
// malformed values as errors instead of silently ignoring them.
//
//   exp::ArgParser parser("my_tool", "what it does");
//   parser.add("--jobs", &jobs, "jobs to simulate");
//   parser.add_flag("--quick", &quick, "tiny budgets for smoke runs");
//   parser.parse_or_exit(argc, argv);   // --help prints usage, exit 0
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

namespace rlbf::exp {

/// Strict numeric conversions used by ArgParser and sweep-value parsing:
/// the whole string must convert and fit. Return false on junk ("12x",
/// "") and on range overflow; subnormal doubles ("1e-320") are valid
/// input. Pinned to the C locale — an embedding process running under
/// LC_NUMERIC=de_DE parses (and formats, see format_double_exact /
/// exp::format_metric) exactly like every other host. The integral
/// template covers every non-bool integer type (size_t included,
/// whatever it aliases on the platform).
bool parse_number(const std::string& text, double* out);
bool parse_int64(const std::string& text, std::int64_t* out);
bool parse_uint64(const std::string& text, std::uint64_t* out);

template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
bool parse_number(const std::string& text, T* out) {
  if constexpr (std::is_signed_v<T>) {
    std::int64_t v = 0;
    if (!parse_int64(text, &v)) return false;
    if (v < static_cast<std::int64_t>(std::numeric_limits<T>::min()) ||
        v > static_cast<std::int64_t>(std::numeric_limits<T>::max())) {
      return false;
    }
    *out = static_cast<T>(v);
  } else {
    std::uint64_t v = 0;
    if (!parse_uint64(text, &v)) return false;
    if (v > static_cast<std::uint64_t>(std::numeric_limits<T>::max())) {
      return false;
    }
    *out = static_cast<T>(v);
  }
  return true;
}

/// Accepts 1/0/true/false/yes/no/on/off (case-insensitive).
bool parse_bool(const std::string& text, bool* out);

/// Exact decimal rendering ("%.17g", round-trips every double). Cache
/// keys and content-addressed fingerprints are built from this one
/// helper so they can never diverge on formatting.
std::string format_double_exact(double value);

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string summary = "");

  /// Bind `--name=value` to a variable. The current value of the target
  /// is rendered in usage() as the default, so bind after defaulting.
  void add(const std::string& name, std::string* value, const std::string& help);
  void add(const std::string& name, bool* value, const std::string& help);
  void add(const std::string& name, double* value, const std::string& help);

  /// Any non-bool integer type, size_t and friends included.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  void add(const std::string& name, T* value, const std::string& help) {
    add_typed(name, help, std::to_string(*value), false,
              [value](const std::string& v) { return parse_number(v, value); });
  }

  /// Bind a valueless switch: `--name` sets the target to true.
  /// (`--name=true|false` also works.)
  void add_flag(const std::string& name, bool* value, const std::string& help);

  /// Bind the i-th bare (non `--`) argument; optional, in bind order.
  void add_positional(const std::string& name, std::string* value,
                      const std::string& help);

  /// Parse `argv[1..)`. Returns false and fills `error` on an unknown
  /// flag, malformed value, or excess positional argument. `--help` is
  /// always accepted; parse() then returns true with help_requested()
  /// set. Parsing assigns in place: values seen before an error stick.
  bool parse(int argc, char** argv, std::string* error = nullptr);
  bool parse(const std::vector<std::string>& args, std::string* error = nullptr);

  /// parse(), but print the error + usage to stderr and exit(2) on
  /// failure, and print usage and exit(0) on `--help`.
  void parse_or_exit(int argc, char** argv);

  bool help_requested() const { return help_requested_; }

  /// Multi-line usage text: summary, then one line per flag with its
  /// help string and default.
  std::string usage() const;

  /// Implementation detail of the typed add() overloads; public only
  /// because the add() template instantiates through it.
  void add_typed(const std::string& name, const std::string& help,
                 std::string default_value, bool is_switch,
                 std::function<bool(const std::string&)> assign);

 private:
  struct Flag {
    std::string name;   // including leading "--"
    std::string help;
    std::string default_value;
    bool is_switch = false;  // valueless form allowed
    std::function<bool(const std::string&)> assign;
  };
  struct Positional {
    std::string name;
    std::string help;
    std::string* value = nullptr;
  };

  const Flag* find(const std::string& name) const;

  std::string program_;
  std::string summary_;
  std::vector<Flag> flags_;
  std::vector<Positional> positionals_;
  bool help_requested_ = false;
};

}  // namespace rlbf::exp
