#include "core/alt_trainers.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/collection.h"
#include "core/rl_backfill.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"

namespace rlbf::core {

namespace {

/// Same masking reconciliation as core::Trainer: the deployment action
/// space must match the training action space.
AgentConfig reconcile_masking(AgentConfig agent, const EnvConfig& env) {
  if (env.mask_delaying()) {
    agent.obs.mask_inadmissible = true;
  } else {
    agent.obs.stop_action = true;
  }
  return agent;
}

/// One epoch's collection request: pre-draw the per-sequence seeds from
/// the trainer's RNG stream (the shared core::collect_sequences body
/// consumes them through whatever transport is installed).
rl::CollectionPlan make_plan(util::Rng& rng, std::size_t n_traj,
                             std::size_t epoch) {
  rl::CollectionPlan plan;
  plan.epoch = epoch;
  plan.seeds.resize(n_traj);
  for (auto& s : plan.seeds) s = rng();
  return plan;
}

/// Greedy held-out evaluation, identical to Trainer::evaluate_greedy.
double evaluate_greedy_impl(const swf::Trace& trace, const Agent& agent,
                            const sim::PriorityPolicy& policy,
                            RewardObjective objective, std::uint64_t seed,
                            std::size_t samples, std::size_t sample_jobs) {
  util::Rng eval_rng(seed ^ 0x6772656564790ull);
  sched::RequestTimeEstimator estimator;
  double sum = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t jobs = std::min(sample_jobs, trace.size());
    const swf::Trace seq = trace.sample(jobs, eval_rng);
    RlBackfillChooser chooser(agent);
    const auto outcome = sched::run_schedule(seq, policy, estimator, &chooser);
    sum += objective_value(objective, outcome.results);
  }
  return sum / static_cast<double>(std::max<std::size_t>(samples, 1));
}

/// The train.* curves shared by both alternative algorithms, keyed by
/// epoch number like Trainer::record_epoch_series. epsilon only means
/// something for DQN; REINFORCE passes record_epsilon = false.
void record_alt_epoch_series(obs::SeriesRecorder* series,
                             const AltEpochStats& s, bool record_epsilon) {
  if (series == nullptr) return;
  const auto step = static_cast<std::int64_t>(s.epoch);
  series->record("train.loss", step, s.loss);
  series->record("train.mean_reward", step, s.mean_reward);
  series->record("train.mean_bsld", step, s.mean_bsld);
  series->record("train.baseline_bsld", step, s.mean_baseline_bsld);
  if (record_epsilon) series->record("train.epsilon", step, s.epsilon);
  if (!std::isnan(s.eval_bsld)) {
    series->record("train.eval_bsld", step, s.eval_bsld);
  }
}

void validate_loop_config(std::size_t trace_size, std::size_t jobs_per_trajectory,
                          std::size_t trajectories_per_epoch, const char* who) {
  if (trace_size < jobs_per_trajectory) {
    throw std::invalid_argument(std::string(who) + ": trace shorter than one trajectory");
  }
  if (trajectories_per_epoch == 0) {
    throw std::invalid_argument(std::string(who) + ": zero trajectories per epoch");
  }
}

}  // namespace

// ---------------------------------------------------------------- DQN --

DqnTrainer::DqnTrainer(swf::Trace trace, const DqnTrainerConfig& config)
    : DqnTrainer(std::move(trace), config,
                 Agent(reconcile_masking(config.agent, config.env), config.seed)) {}

DqnTrainer::DqnTrainer(swf::Trace trace, const DqnTrainerConfig& config,
                       const Agent& initial)
    : trace_(std::move(trace)),
      config_(config),
      agent_(initial.clone()),
      policy_(sched::make_policy(config.base_policy)),
      pool_(config.threads),
      dqn_(agent_.model(), config.dqn),
      rng_(config.seed ^ 0x64716e2d74726eull) {
  validate_loop_config(trace_.size(), config_.jobs_per_trajectory,
                       config_.trajectories_per_epoch, "DqnTrainer");
  config_.env.selection = ActionSelection::EpsilonGreedy;
}

AltEpochStats DqnTrainer::run_epoch() {
  obs::Span span("train_epoch", "train");
  const auto t0 = std::chrono::steady_clock::now();
  AltEpochStats stats;
  stats.epoch = ++epoch_;
  stats.epsilon = dqn_.epsilon(epoch_ - 1);

  rl::CollectionPlan plan =
      make_plan(rng_, config_.trajectories_per_epoch, epoch_);
  plan.epsilon = stats.epsilon;
  CollectionContext ctx;
  ctx.trace = &trace_;
  ctx.policy = policy_.get();
  ctx.estimator = &estimator_;
  ctx.env = config_.env;
  ctx.env.epsilon = stats.epsilon;
  ctx.jobs_per_trajectory = config_.jobs_per_trajectory;
  auto results = collect_sequences(*collector_, plan, ctx, agent_);

  double sum_bsld = 0.0, sum_base = 0.0, sum_reward = 0.0;
  for (auto& r : results) {
    sum_bsld += r.bsld;
    sum_base += r.baseline_bsld;
    sum_reward += r.episode.total_reward();
    stats.steps += r.episode.steps.size();
    if (!r.episode.steps.empty()) dqn_.absorb(r.episode);
  }
  const auto n = static_cast<double>(results.size());
  stats.mean_bsld = sum_bsld / n;
  stats.mean_baseline_bsld = sum_base / n;
  stats.mean_reward = sum_reward / n;

  const rl::DqnStats d = dqn_.update(rng_);
  stats.loss = d.loss;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (obs::enabled()) {
    obs::counter("rl.epochs").add(1);
    obs::histogram("rl.epoch_seconds").observe(stats.wall_seconds);
  }
  return stats;
}

double DqnTrainer::evaluate_greedy() {
  return evaluate_greedy_impl(trace_, agent_, *policy_, config_.env.objective,
                              config_.seed, config_.eval_samples,
                              config_.eval_sample_jobs);
}

std::vector<AltEpochStats> DqnTrainer::train(
    const std::function<void(const AltEpochStats&)>& on_epoch) {
  std::vector<AltEpochStats> history;
  history.reserve(config_.epochs);
  for (std::size_t e = 0; e < config_.epochs; ++e) {
    history.push_back(run_epoch());
    auto& s = history.back();
    const bool last_epoch = (e + 1 == config_.epochs);
    if (config_.eval_every > 0 && (s.epoch % config_.eval_every == 0 || last_epoch)) {
      s.eval_bsld = evaluate_greedy();
      if (config_.keep_best && s.eval_bsld < best_eval_bsld_) {
        best_eval_bsld_ = s.eval_bsld;
        best_model_ = agent_.model().clone();
      }
    }
    util::log_info("dqn epoch ", s.epoch, " reward=", s.mean_reward,
                   " bsld=", s.mean_bsld, " eps=", s.epsilon, " loss=", s.loss,
                   " eval=", s.eval_bsld, " wall=", s.wall_seconds, "s");
    record_alt_epoch_series(series_, s, /*record_epsilon=*/true);
    if (on_epoch) on_epoch(s);
  }
  if (config_.keep_best && best_model_ != nullptr) {
    agent_.model().sync_from(*best_model_);
    util::log_info("dqn: restored best checkpoint (greedy eval bsld=",
                   best_eval_bsld_, ")");
  }
  return history;
}

// ---------------------------------------------------------- REINFORCE --

ReinforceTrainer::ReinforceTrainer(swf::Trace trace, const ReinforceTrainerConfig& config)
    : ReinforceTrainer(std::move(trace), config,
                       Agent(reconcile_masking(config.agent, config.env), config.seed)) {}

ReinforceTrainer::ReinforceTrainer(swf::Trace trace,
                                   const ReinforceTrainerConfig& config,
                                   const Agent& initial)
    : trace_(std::move(trace)),
      config_(config),
      agent_(initial.clone()),
      policy_(sched::make_policy(config.base_policy)),
      pool_(config.threads),
      reinforce_(agent_.model(), config.reinforce),
      rng_(config.seed ^ 0x7265696e66ull) {
  validate_loop_config(trace_.size(), config_.jobs_per_trajectory,
                       config_.trajectories_per_epoch, "ReinforceTrainer");
  config_.env.selection = ActionSelection::SampleSoftmax;
}

AltEpochStats ReinforceTrainer::run_epoch() {
  obs::Span span("train_epoch", "train");
  const auto t0 = std::chrono::steady_clock::now();
  AltEpochStats stats;
  stats.epoch = ++epoch_;

  const rl::CollectionPlan plan =
      make_plan(rng_, config_.trajectories_per_epoch, epoch_);
  CollectionContext ctx;
  ctx.trace = &trace_;
  ctx.policy = policy_.get();
  ctx.estimator = &estimator_;
  ctx.env = config_.env;
  ctx.jobs_per_trajectory = config_.jobs_per_trajectory;
  auto results = collect_sequences(*collector_, plan, ctx, agent_);

  rl::RolloutBuffer buffer;
  double sum_bsld = 0.0, sum_base = 0.0, sum_reward = 0.0;
  for (auto& r : results) {
    sum_bsld += r.bsld;
    sum_base += r.baseline_bsld;
    sum_reward += r.episode.total_reward();
    stats.steps += r.episode.steps.size();
    if (!r.episode.steps.empty()) buffer.add_episode(std::move(r.episode));
  }
  const auto n = static_cast<double>(results.size());
  stats.mean_bsld = sum_bsld / n;
  stats.mean_baseline_bsld = sum_base / n;
  stats.mean_reward = sum_reward / n;

  if (buffer.episode_count() > 0) {
    const rl::ReinforceStats r = reinforce_.update(buffer, rng_);
    stats.loss = r.policy_loss;
  }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (obs::enabled()) {
    obs::counter("rl.epochs").add(1);
    obs::histogram("rl.epoch_seconds").observe(stats.wall_seconds);
  }
  return stats;
}

double ReinforceTrainer::evaluate_greedy() {
  return evaluate_greedy_impl(trace_, agent_, *policy_, config_.env.objective,
                              config_.seed, config_.eval_samples,
                              config_.eval_sample_jobs);
}

std::vector<AltEpochStats> ReinforceTrainer::train(
    const std::function<void(const AltEpochStats&)>& on_epoch) {
  std::vector<AltEpochStats> history;
  history.reserve(config_.epochs);
  for (std::size_t e = 0; e < config_.epochs; ++e) {
    history.push_back(run_epoch());
    auto& s = history.back();
    const bool last_epoch = (e + 1 == config_.epochs);
    if (config_.eval_every > 0 && (s.epoch % config_.eval_every == 0 || last_epoch)) {
      s.eval_bsld = evaluate_greedy();
      if (config_.keep_best && s.eval_bsld < best_eval_bsld_) {
        best_eval_bsld_ = s.eval_bsld;
        best_model_ = agent_.model().clone();
      }
    }
    util::log_info("reinforce epoch ", s.epoch, " reward=", s.mean_reward,
                   " bsld=", s.mean_bsld, " loss=", s.loss, " eval=", s.eval_bsld,
                   " wall=", s.wall_seconds, "s");
    record_alt_epoch_series(series_, s, /*record_epsilon=*/false);
    if (on_epoch) on_epoch(s);
  }
  if (config_.keep_best && best_model_ != nullptr) {
    agent_.model().sync_from(*best_model_);
    util::log_info("reinforce: restored best checkpoint (greedy eval bsld=",
                   best_eval_bsld_, ")");
  }
  return history;
}

}  // namespace rlbf::core
