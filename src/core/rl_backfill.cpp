#include "core/rl_backfill.h"

namespace rlbf::core {

RlBackfillChooser::RlBackfillChooser(const Agent& agent, std::string label)
    : agent_(agent), label_(std::move(label)) {}

std::optional<std::size_t> RlBackfillChooser::choose(const sim::BackfillContext& ctx) {
  return agent_.choose_greedy(ctx);
}

}  // namespace rlbf::core
