// The one sequence-production body behind every trainer (PPO, DQN,
// REINFORCE), extracted from the formerly-duplicated epoch loops in
// core::Trainer and core::alt_trainers and driven through the
// rl::Collector transport seam.
//
// Per sequence: sample `jobs_per_trajectory` consecutive jobs from the
// training trace, simulate the reward baseline on them (FCFS base +
// shortest-first EASY backfilling, paper §3.4), then schedule them with
// the base policy and the sampling TrainingEnv. Everything is a pure
// function of the per-sequence seed plus the context — the property the
// transports rely on for byte-identical collection at any thread or
// worker count.
#pragma once

#include "core/agent.h"
#include "core/backfill_env.h"
#include "rl/collect.h"
#include "sched/scheduler.h"

namespace rlbf::core {

/// Everything one epoch's sequence production reads (borrowed; callers
/// keep the referents alive across collect_sequences).
struct CollectionContext {
  const swf::Trace* trace = nullptr;
  const sim::PriorityPolicy* policy = nullptr;
  const sim::RuntimeEstimator* estimator = nullptr;
  /// The epoch's environment, exploration already applied (DQN sets the
  /// decayed epsilon before collecting).
  EnvConfig env;
  std::size_t jobs_per_trajectory = 0;
};

/// Run one epoch's collection through `collector`. Provisions one agent
/// replica per transport slot (replicas are only READ during
/// collection — the learner's update happens after — so a slot serving
/// several sequences is safe) and returns plan.seeds.size() results in
/// sequence order.
std::vector<rl::SequenceResult> collect_sequences(
    rl::Collector& collector, const rl::CollectionPlan& plan,
    const CollectionContext& ctx, const Agent& agent);

}  // namespace rlbf::core
