#include "core/trainer.h"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/collection.h"
#include "core/rl_backfill.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"

namespace rlbf::core {

namespace {
/// Keep the deployment action space identical to the training action
/// space: a hard-masked agent must mask at deployment too (its policy
/// has never scored an inadmissible candidate), and a penalty-trained
/// agent needs the stop action so it can decline a delaying pick.
AgentConfig reconcile_masking(const TrainerConfig& config) {
  AgentConfig agent = config.agent;
  if (config.env.mask_delaying()) {
    agent.obs.mask_inadmissible = true;
  } else {
    agent.obs.stop_action = true;
  }
  return agent;
}
}  // namespace

Trainer::Trainer(swf::Trace trace, const TrainerConfig& config)
    : Trainer(std::move(trace), config, Agent(reconcile_masking(config), config.seed)) {}

Trainer::Trainer(swf::Trace trace, const TrainerConfig& config, const Agent& initial)
    : trace_(std::move(trace)),
      config_(config),
      agent_(initial.clone()),
      policy_(sched::make_policy(config.base_policy)),
      pool_(config.threads),
      ppo_(agent_.model(), config.ppo, &pool_),
      rng_(config.seed ^ 0x7261696e65722dull) {
  if (trace_.size() < config_.jobs_per_trajectory) {
    throw std::invalid_argument("trainer: trace shorter than one trajectory");
  }
  if (config_.trajectories_per_epoch == 0) {
    throw std::invalid_argument("trainer: zero trajectories per epoch");
  }
}

EpochStats Trainer::run_epoch() {
  obs::Span span("train_epoch", "train");
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n_traj = config_.trajectories_per_epoch;

  // Pre-draw the per-trajectory seeds on the main thread so the epoch is
  // deterministic regardless of worker interleaving — or, with a process
  // transport, regardless of which worker serves which sequence.
  rl::CollectionPlan plan;
  plan.epoch = epoch_ + 1;
  plan.seeds.resize(n_traj);
  for (auto& s : plan.seeds) s = rng_();

  CollectionContext ctx;
  ctx.trace = &trace_;
  ctx.policy = policy_.get();
  ctx.estimator = &estimator_;
  ctx.env = config_.env;
  ctx.jobs_per_trajectory = config_.jobs_per_trajectory;
  std::vector<rl::SequenceResult> results =
      collect_sequences(*collector_, plan, ctx, agent_);

  rl::RolloutBuffer buffer;
  EpochStats stats;
  stats.epoch = ++epoch_;
  double sum_bsld = 0.0, sum_base = 0.0, sum_reward = 0.0;
  for (auto& r : results) {
    sum_bsld += r.bsld;
    sum_base += r.baseline_bsld;
    sum_reward += r.episode.total_reward();
    stats.steps += r.episode.steps.size();
    if (!r.episode.steps.empty()) buffer.add_episode(std::move(r.episode));
  }
  const auto n = static_cast<double>(n_traj);
  stats.mean_bsld = sum_bsld / n;
  stats.mean_baseline_bsld = sum_base / n;
  stats.mean_reward = sum_reward / n;

  if (buffer.episode_count() > 0) {
    stats.ppo = ppo_.update(buffer, rng_);
  }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (obs::enabled()) {
    obs::counter("rl.epochs").add(1);
    obs::histogram("rl.epoch_seconds").observe(stats.wall_seconds);
  }
  return stats;
}

double Trainer::evaluate_greedy() {
  // Fixed seeds: every evaluation sees the same held-out sequences, so
  // checkpoint comparisons are apples-to-apples.
  util::Rng eval_rng(config_.seed ^ 0x6772656564790ull);
  sched::RequestTimeEstimator estimator;
  double sum = 0.0;
  for (std::size_t s = 0; s < config_.eval_samples; ++s) {
    const std::size_t jobs = std::min(config_.eval_sample_jobs, trace_.size());
    const swf::Trace seq = trace_.sample(jobs, eval_rng);
    RlBackfillChooser chooser(agent_);
    const auto outcome = sched::run_schedule(seq, *policy_, estimator, &chooser);
    sum += objective_value(config_.env.objective, outcome.results);
  }
  return sum / static_cast<double>(std::max<std::size_t>(config_.eval_samples, 1));
}

void Trainer::record_epoch_series(const EpochStats& s) const {
  if (series_ == nullptr) return;
  const auto step = static_cast<std::int64_t>(s.epoch);
  series_->record("train.policy_loss", step, s.ppo.policy_loss);
  series_->record("train.value_loss", step, s.ppo.value_loss);
  series_->record("train.entropy", step, s.ppo.entropy);
  series_->record("train.grad_norm", step, s.ppo.grad_norm);
  series_->record("train.approx_kl", step, s.ppo.approx_kl);
  series_->record("train.mean_reward", step, s.mean_reward);
  series_->record("train.mean_bsld", step, s.mean_bsld);
  series_->record("train.baseline_bsld", step, s.mean_baseline_bsld);
  // Sparse series: the greedy evaluation only runs every eval_every
  // epochs, so non-evaluation epochs contribute no point rather than a
  // misleading NaN.
  if (!std::isnan(s.eval_bsld)) {
    series_->record("train.eval_bsld", step, s.eval_bsld);
  }
}

std::vector<EpochStats> Trainer::train(
    const std::function<void(const EpochStats&)>& on_epoch) {
  std::vector<EpochStats> history;
  history.reserve(config_.epochs);
  for (std::size_t e = 0; e < config_.epochs; ++e) {
    history.push_back(run_epoch());
    auto& s = history.back();
    const bool last_epoch = (e + 1 == config_.epochs);
    if (config_.eval_every > 0 &&
        (s.epoch % config_.eval_every == 0 || last_epoch)) {
      s.eval_bsld = evaluate_greedy();
      if (config_.keep_best && s.eval_bsld < best_eval_bsld_) {
        best_eval_bsld_ = s.eval_bsld;
        best_model_ = agent_.model().clone();
      }
    }
    util::log_info("epoch ", s.epoch, " reward=", s.mean_reward,
                   " bsld=", s.mean_bsld, " baseline=", s.mean_baseline_bsld,
                   " steps=", s.steps, " kl=", s.ppo.approx_kl,
                   " eval=", s.eval_bsld, " wall=", s.wall_seconds, "s");
    record_epoch_series(s);
    if (on_epoch) on_epoch(s);
  }
  if (config_.keep_best && best_model_ != nullptr) {
    agent_.model().sync_from(*best_model_);
    util::log_info("restored best checkpoint (greedy eval bsld=", best_eval_bsld_, ")");
  }
  return history;
}

}  // namespace rlbf::core
