// Observation construction (paper §3.2): the RL agent sees the queued
// jobs (sorted by submission time, truncated FCFS-style to
// MAX_OBSV_SIZE), the selected job (present but masked so it can never
// be picked), and the resource availability appended to every job
// vector — "each job vector will contain the resource availability
// information, which is the key for the kernel-based RL neural networks
// to work".
//
// Per-job features (all scaled to roughly [0, 1]):
//   0: waiting time        log1p(wt) / log1p(1 week)
//   1: requested time      log1p(rt) / log1p(1 week)
//   2: requested procs     nt / machine_procs
//   3: fits now            1 if nt <= free procs
//   4: estimated runtime   log1p(est) / log1p(1 week)   (the estimator's
//                          view; equals f1 when estimates = request time)
//   5: reservation slack   clamp((shadow - now - est) / (shadow - now), -1, 1)
//                          > 0 iff the job would finish before the
//                          blocked job's reservation
//   6: free fraction       available procs / machine procs (same for all rows)
//   7: is the blocked job  1 for the rjob row (always masked)
//   8: is the stop action  1 for the synthetic "end this backfilling
//                          opportunity" row (see stop_action below)
//   9: fit ratio           procs / free procs, clamped to [0, 1] — how
//                          much of the currently free capacity this
//                          candidate would consume (best-fit signal the
//                          MLP cannot easily derive from f2 and f6)
//
// The stop action (optional, default off): the paper defines actions as
// "the selected jobs for backfilling" and ends an opportunity when
// nothing fits. Under the penalty reward (EnvConfig::delay_penalty) the
// agent then cannot decline a delaying pick, so we can append one
// synthetic always-selectable row meaning "backfill nothing (more) right
// now"; picking it ends the opportunity. Under the default hard-masking
// action space the stop action is unnecessary (admissible picks never
// delay the reserved job) and slows convergence, so it defaults off.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "sim/event_sim.h"

namespace rlbf::core {

struct ObservationConfig {
  /// The paper's MAX_OBSV_SIZE: jobs beyond this (in submit order) are
  /// cut off; with pad_policy_obs the matrix is zero-padded up to it.
  std::size_t max_obsv_size = 128;
  /// Jobs flattened into the value network's fixed-size input. The paper
  /// flattens all MAX_OBSV_SIZE jobs; 32 is this reproduction's
  /// compute-budget default (see DESIGN.md §3, substitution 3).
  std::size_t value_obsv_size = 32;
  /// Pad the policy observation to max_obsv_size rows (required by the
  /// flat-policy ablation; the kernel policy handles variable rows).
  bool pad_policy_obs = false;
  /// Always mask EASY-inadmissible candidates (the hard-masking ablation
  /// A2). Stored here so a model trained under masking is deployed under
  /// the same action space.
  bool mask_inadmissible = false;
  /// Append the synthetic stop row (see the header comment).
  bool stop_action = false;
  /// Per-feature enable bits (bit i = feature i above). The default
  /// enables all 10; the feature-importance ablation clears one bit at a
  /// time and retrains. Disabled features read as 0 in every row, so
  /// network shapes are unchanged. The stop-row indicator (feature 8)
  /// cannot be disabled while stop_action is on.
  std::uint32_t feature_mask = 0x3FF;

  static constexpr std::size_t kFeatures = 10;
  bool feature_enabled(std::size_t f) const {
    return (feature_mask >> f) & 1u;
  }
  std::size_t policy_feature_dim() const { return kFeatures; }
  std::size_t value_feature_dim() const { return value_obsv_size * kFeatures; }
  /// Policy observation rows when padded: jobs plus the optional stop row.
  std::size_t padded_policy_rows() const {
    return max_obsv_size + (stop_action ? 1 : 0);
  }
};

/// Sentinel for rows with no backfill candidate behind them.
inline constexpr std::size_t kNoCandidate = static_cast<std::size_t>(-1);
/// Sentinel for the stop row: selecting it ends the opportunity.
inline constexpr std::size_t kStopAction = static_cast<std::size_t>(-2);

struct PolicyObservation {
  /// rows x kFeatures job matrix.
  nn::Tensor obs;
  /// 1 = selectable (maps to a backfill candidate), per row.
  std::vector<std::uint8_t> mask;
  /// Row -> index into BackfillContext::candidates (kNoCandidate if the
  /// row is the rjob, an infeasible job, or padding).
  std::vector<std::size_t> row_to_candidate;

  bool any_selectable() const;
};

class ObservationBuilder {
 public:
  explicit ObservationBuilder(const ObservationConfig& config);

  const ObservationConfig& config() const { return config_; }

  /// Build the per-candidate policy observation for one backfilling
  /// opportunity. With `admissible_only`, the mask additionally requires
  /// the EASY no-delay test (the hard-masking ablation).
  PolicyObservation build_policy(const sim::BackfillContext& ctx,
                                 bool admissible_only = false) const;

  /// Build the flattened fixed-size critic observation (1 x value_feature_dim).
  nn::Tensor build_value(const sim::BackfillContext& ctx) const;

 private:
  /// Queue (indices) sorted by submit time, truncated to `limit`. The
  /// full sorted order is shared through ctx.cache when present, so the
  /// policy and value views of one decision sort the queue once.
  std::vector<std::size_t> observed_queue(const sim::BackfillContext& ctx,
                                          std::size_t limit) const;
  void fill_row(nn::Tensor& obs, std::size_t row, std::size_t job_index,
                const sim::BackfillContext& ctx) const;

  ObservationConfig config_;
};

}  // namespace rlbf::core
