#include "core/agent.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "rl/ppo.h"

namespace rlbf::core {

namespace {

std::unique_ptr<rl::ActorCritic> build_model(const AgentConfig& config,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  if (config.kernel_policy) {
    return std::make_unique<KernelActorCritic>(config.obs, config.net, rng);
  }
  return std::make_unique<FlatActorCritic>(config.obs, config.net, rng);
}

}  // namespace

Agent::Agent(const AgentConfig& config, std::uint64_t seed)
    : config_(config), observer_(config.obs), model_(build_model(config, seed)) {
  if (!config.kernel_policy && !config.obs.pad_policy_obs) {
    throw std::invalid_argument("flat agent requires pad_policy_obs");
  }
}

Agent::Agent(const AgentConfig& config, std::unique_ptr<rl::ActorCritic> model)
    : config_(config), observer_(config.obs), model_(std::move(model)) {
  if (model_ == nullptr) throw std::invalid_argument("Agent: null model");
}

Agent Agent::clone() const { return Agent(config_, model_->clone()); }

std::optional<std::size_t> Agent::choose_greedy(const sim::BackfillContext& ctx) const {
  const PolicyObservation po = observer_.build_policy(ctx);
  if (!po.any_selectable()) return std::nullopt;
  const nn::Tensor logits = model_->policy_logits_nograd(po.obs);
  const std::size_t row = rl::argmax_masked(logits, po.mask);
  const std::size_t candidate = po.row_to_candidate[row];
  if (candidate == kStopAction) return std::nullopt;
  return candidate;
}

bool Agent::save(const std::string& path,
                 const std::map<std::string, std::string>& meta) const {
  nn::ModelBundle bundle;
  bundle.meta = meta;
  bundle.meta["kernel_policy"] = config_.kernel_policy ? "1" : "0";
  bundle.meta["max_obsv_size"] = std::to_string(config_.obs.max_obsv_size);
  bundle.meta["value_obsv_size"] = std::to_string(config_.obs.value_obsv_size);
  bundle.meta["pad_policy_obs"] = config_.obs.pad_policy_obs ? "1" : "0";
  bundle.meta["mask_inadmissible"] = config_.obs.mask_inadmissible ? "1" : "0";
  bundle.meta["stop_action"] = config_.obs.stop_action ? "1" : "0";
  bundle.meta["feature_mask"] = std::to_string(config_.obs.feature_mask);
  if (config_.kernel_policy) {
    const auto& m = dynamic_cast<const KernelActorCritic&>(*model_);
    bundle.mlps.emplace_back("policy", m.policy_net().clone());
    bundle.mlps.emplace_back("value", m.value_net().clone());
  } else {
    const auto& m = dynamic_cast<const FlatActorCritic&>(*model_);
    bundle.mlps.emplace_back("policy", m.policy_net().clone());
    bundle.mlps.emplace_back("value", m.value_net().clone());
  }
  return nn::save_model_file(path, bundle);
}

Agent Agent::load(const std::string& path) {
  const nn::ModelBundle bundle = nn::load_model_file(path);
  const auto meta_get = [&](const char* key, const std::string& dflt) {
    const auto it = bundle.meta.find(key);
    return it == bundle.meta.end() ? dflt : it->second;
  };
  // Strict numeric meta: a garbled value must name the file and key, not
  // surface as a bare std::stoul exception (or worse, load half a config).
  const auto meta_uint = [&](const char* key, const char* dflt) -> std::uint64_t {
    const std::string text = meta_get(key, dflt);
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    // strtoull wraps a leading '-' instead of failing; require a digit.
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])) ||
        end == text.c_str() || *end != '\0' || errno == ERANGE) {
      throw std::runtime_error("agent model: bad meta value " + std::string(key) +
                               "='" + text + "' in " + path);
    }
    return v;
  };
  AgentConfig config;
  config.kernel_policy = meta_get("kernel_policy", "1") == "1";
  config.obs.max_obsv_size =
      static_cast<std::size_t>(meta_uint("max_obsv_size", "128"));
  config.obs.value_obsv_size =
      static_cast<std::size_t>(meta_uint("value_obsv_size", "32"));
  config.obs.pad_policy_obs = meta_get("pad_policy_obs", "0") == "1";
  config.obs.mask_inadmissible = meta_get("mask_inadmissible", "0") == "1";
  config.obs.stop_action = meta_get("stop_action", "0") == "1";
  config.obs.feature_mask =
      static_cast<std::uint32_t>(meta_uint("feature_mask", "1023"));

  const nn::Mlp* policy = bundle.find("policy");
  const nn::Mlp* value = bundle.find("value");
  if (policy == nullptr || value == nullptr) {
    throw std::runtime_error("agent model missing policy/value networks: " + path);
  }
  std::unique_ptr<rl::ActorCritic> model;
  if (config.kernel_policy) {
    model = std::make_unique<KernelActorCritic>(config.obs, policy->clone(),
                                                value->clone());
  } else {
    model = std::make_unique<FlatActorCritic>(config.obs, policy->clone(),
                                              value->clone());
  }
  return Agent(config, std::move(model));
}

std::map<std::string, std::string> Agent::load_meta(const std::string& path) {
  // Meta-only read: listing a model store must not parse tensor data.
  return nn::load_model_meta_file(path);
}

}  // namespace rlbf::core
