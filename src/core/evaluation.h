// The paper's evaluation protocol as a library facility (§4.3): sample N
// random `sample_jobs`-long contiguous sequences from a trace, schedule
// every configuration on the *same* sequences, and report the mean
// bounded slowdown with a percentile-bootstrap confidence interval.
// Tables 4 and 5 and the ablation benches are all built on this.
#pragma once

#include <string>
#include <vector>

#include "core/agent.h"
#include "sched/scheduler.h"

namespace rlbf::core {

struct EvalProtocol {
  std::size_t samples = 10;       // paper: 10 repetitions
  std::size_t sample_jobs = 1024; // paper: 1024-job sequences
  std::uint64_t seed = 1;         // drives BOTH sampling and bootstrap
  std::size_t bootstrap_resamples = 1000;
  /// Simulator options each sampled sequence runs under (kill-on-overrun
  /// studies etc.); the default reproduces the paper's protocol.
  sim::SimulationOptions options;
};

struct EvalResult {
  double mean = 0.0;
  double ci_lo = 0.0;  // 95% percentile bootstrap
  double ci_hi = 0.0;
  std::vector<double> samples;  // per-sequence bsld, sampling order
};

/// Generic form. `chooser` may be null (no backfilling) and must be
/// stateless across schedules (every deployment chooser in this library
/// is; the stateful TrainingEnv is a training-only construct). Sequences
/// are identical for equal (trace, protocol) regardless of the
/// configuration under test.
EvalResult evaluate(const swf::Trace& trace, const sim::PriorityPolicy& policy,
                    const sim::RuntimeEstimator& estimator,
                    sim::BackfillChooser* chooser,
                    const EvalProtocol& protocol = {});

/// Evaluate a heuristic scheduler configuration.
EvalResult evaluate_spec(const swf::Trace& trace, const sched::SchedulerSpec& spec,
                         const EvalProtocol& protocol = {});

/// Evaluate a trained RLBackfilling agent under `base_policy`, using the
/// user-request-time estimator (the deployment configuration).
EvalResult evaluate_agent(const swf::Trace& trace, const Agent& agent,
                          const std::string& base_policy,
                          const EvalProtocol& protocol = {});

}  // namespace rlbf::core
