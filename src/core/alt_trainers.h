// Training loops for the alternative RL algorithms (DQN, REINFORCE),
// mirroring core::Trainer's protocol — per epoch, sample random
// `jobs_per_trajectory`-job sequences, schedule each under the base
// policy with the TrainingEnv collecting decisions, then run one
// algorithm update — so bench/ablation_rl_algorithm compares PPO, DQN
// and REINFORCE under identical data collection, reward shaping, and
// greedy-evaluation checkpointing.
//
// Differences from the PPO loop:
//   * DqnTrainer explores epsilon-greedily over Q-values with a linear
//     epsilon decay, and retains experience across epochs in the replay
//     buffer (PPO discards each epoch's rollouts after one update);
//   * ReinforceTrainer is PPO's loop with the clipped multi-iteration
//     update replaced by a single policy-gradient step.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/backfill_env.h"
#include "obs/series.h"
#include "rl/collect.h"
#include "rl/dqn.h"
#include "rl/reinforce.h"
#include "sched/scheduler.h"
#include "util/thread_pool.h"

namespace rlbf::core {

/// Per-epoch progress common to the alternative algorithms.
struct AltEpochStats {
  std::size_t epoch = 0;
  double mean_reward = 0.0;
  double mean_bsld = 0.0;
  double mean_baseline_bsld = 0.0;
  std::size_t steps = 0;
  double loss = 0.0;     // TD Huber loss (DQN) / policy loss (REINFORCE)
  double epsilon = 0.0;  // exploration rate this epoch (DQN only)
  double wall_seconds = 0.0;
  /// Greedy held-out evaluation bsld; NaN on non-evaluation epochs.
  double eval_bsld = std::numeric_limits<double>::quiet_NaN();
};

struct DqnTrainerConfig {
  std::string base_policy = "FCFS";
  std::size_t epochs = 50;
  std::size_t trajectories_per_epoch = 100;
  std::size_t jobs_per_trajectory = 256;
  rl::DqnConfig dqn;
  EnvConfig env;  // selection is forced to EpsilonGreedy
  AgentConfig agent;
  std::uint64_t seed = 1;
  std::size_t threads = 0;

  std::size_t eval_every = 5;
  std::size_t eval_samples = 6;
  std::size_t eval_sample_jobs = 1024;
  bool keep_best = true;
};

class DqnTrainer {
 public:
  DqnTrainer(swf::Trace trace, const DqnTrainerConfig& config);
  /// Warm start: fine-tune `initial` (e.g. a model trained on another
  /// trace) instead of a fresh agent. The initial agent's observation
  /// and network configuration override config.agent.
  DqnTrainer(swf::Trace trace, const DqnTrainerConfig& config, const Agent& initial);

  AltEpochStats run_epoch();
  std::vector<AltEpochStats> train(
      const std::function<void(const AltEpochStats&)>& on_epoch = nullptr);
  double evaluate_greedy();

  Agent& agent() { return agent_; }
  const Agent& agent() const { return agent_; }
  const rl::Dqn& dqn() const { return dqn_; }
  const DqnTrainerConfig& config() const { return config_; }

  /// Swap the rollout transport (borrowed; nullptr restores the default
  /// in-process ThreadCollector). Same contract as Trainer::set_collector.
  void set_collector(rl::Collector* collector) {
    collector_ = collector != nullptr ? collector : &thread_collector_;
  }

  /// Attach a time-series recorder (borrowed; must outlive the
  /// trainer). Same pure-observer contract as Trainer::set_series.
  void set_series(obs::SeriesRecorder* series) { series_ = series; }

 private:
  swf::Trace trace_;
  DqnTrainerConfig config_;
  Agent agent_;
  std::unique_ptr<sim::PriorityPolicy> policy_;
  sched::RequestTimeEstimator estimator_;
  util::ThreadPool pool_;
  rl::ThreadCollector thread_collector_{pool_};
  rl::Collector* collector_ = &thread_collector_;
  rl::Dqn dqn_;
  util::Rng rng_;
  std::size_t epoch_ = 0;
  double best_eval_bsld_ = std::numeric_limits<double>::infinity();
  std::unique_ptr<rl::ActorCritic> best_model_;
  obs::SeriesRecorder* series_ = nullptr;
};

struct ReinforceTrainerConfig {
  std::string base_policy = "FCFS";
  std::size_t epochs = 50;
  std::size_t trajectories_per_epoch = 100;
  std::size_t jobs_per_trajectory = 256;
  rl::ReinforceConfig reinforce;
  EnvConfig env;  // selection is forced to SampleSoftmax
  AgentConfig agent;
  std::uint64_t seed = 1;
  std::size_t threads = 0;

  std::size_t eval_every = 5;
  std::size_t eval_samples = 6;
  std::size_t eval_sample_jobs = 1024;
  bool keep_best = true;
};

class ReinforceTrainer {
 public:
  ReinforceTrainer(swf::Trace trace, const ReinforceTrainerConfig& config);
  ReinforceTrainer(swf::Trace trace, const ReinforceTrainerConfig& config,
                   const Agent& initial);

  AltEpochStats run_epoch();
  std::vector<AltEpochStats> train(
      const std::function<void(const AltEpochStats&)>& on_epoch = nullptr);
  double evaluate_greedy();

  Agent& agent() { return agent_; }
  const Agent& agent() const { return agent_; }
  const ReinforceTrainerConfig& config() const { return config_; }

  /// Swap the rollout transport (borrowed; nullptr restores the default
  /// in-process ThreadCollector). Same contract as Trainer::set_collector.
  void set_collector(rl::Collector* collector) {
    collector_ = collector != nullptr ? collector : &thread_collector_;
  }

  /// Attach a time-series recorder (borrowed; must outlive the
  /// trainer). Same pure-observer contract as Trainer::set_series.
  void set_series(obs::SeriesRecorder* series) { series_ = series; }

 private:
  swf::Trace trace_;
  ReinforceTrainerConfig config_;
  Agent agent_;
  std::unique_ptr<sim::PriorityPolicy> policy_;
  sched::RequestTimeEstimator estimator_;
  util::ThreadPool pool_;
  rl::ThreadCollector thread_collector_{pool_};
  rl::Collector* collector_ = &thread_collector_;
  rl::Reinforce reinforce_;
  util::Rng rng_;
  std::size_t epoch_ = 0;
  double best_eval_bsld_ = std::numeric_limits<double>::infinity();
  std::unique_ptr<rl::ActorCritic> best_model_;
  obs::SeriesRecorder* series_ = nullptr;
};

}  // namespace rlbf::core
