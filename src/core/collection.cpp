#include "core/collection.h"

#include <algorithm>

#include "sched/easy_backfill.h"

namespace rlbf::core {

std::vector<rl::SequenceResult> collect_sequences(
    rl::Collector& collector, const rl::CollectionPlan& plan,
    const CollectionContext& ctx, const Agent& agent) {
  // Per-slot agent replicas: collection reads model parameters while the
  // learner later writes them, so transport slots run on private copies
  // synced once per epoch. A process transport reports zero slots (its
  // workers load the model themselves) and never invokes the fn.
  const std::size_t n_slots = collector.slots(plan.seeds.size());
  std::vector<Agent> replicas;
  replicas.reserve(n_slots);
  for (std::size_t s = 0; s < n_slots; ++s) replicas.push_back(agent.clone());

  const rl::SequenceFn produce = [&](std::size_t index, std::uint64_t seed,
                                     std::size_t slot) {
    (void)index;
    Agent& worker_agent = replicas[slot];
    util::Rng traj_rng(seed);

    // Sample the sequence and compute the reward baseline on it:
    // FCFS base + shortest-first EASY backfilling (paper §3.4).
    const swf::Trace seq = ctx.trace->sample(ctx.jobs_per_trajectory, traj_rng);
    sched::FcfsPolicy fcfs;
    sched::EasyBackfillChooser sjf_bf(sched::BackfillOrder::ShortestFirst);
    const auto baseline = sched::run_schedule(seq, fcfs, *ctx.estimator, &sjf_bf);
    const double baseline_bsld =
        std::max(objective_value(ctx.env.objective, baseline.results), 1.0);

    TrainingEnv env(worker_agent, ctx.env, traj_rng.split());
    env.set_baseline_bsld(baseline_bsld);
    (void)sched::run_schedule(seq, *ctx.policy, *ctx.estimator, &env);

    rl::SequenceResult result;
    result.episode = env.take_episode();
    result.bsld = env.last_bsld();
    result.baseline_bsld = baseline_bsld;
    return result;
  };

  return collector.collect(plan, produce);
}

}  // namespace rlbf::core
