#include "core/networks.h"

#include <algorithm>
#include <stdexcept>

namespace rlbf::core {

namespace {

std::vector<std::size_t> with_ends(std::size_t in, const std::vector<std::size_t>& hidden,
                                   std::size_t out) {
  std::vector<std::size_t> dims;
  dims.reserve(hidden.size() + 2);
  dims.push_back(in);
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  dims.push_back(out);
  return dims;
}

void check_dims(const nn::Mlp& mlp, std::size_t in, std::size_t out, const char* what) {
  if (mlp.in_features() != in || mlp.out_features() != out) {
    throw std::invalid_argument(std::string(what) + ": dimension mismatch");
  }
}

}  // namespace

// ---------------- KernelActorCritic ----------------

KernelActorCritic::KernelActorCritic(const ObservationConfig& obs,
                                     const NetworkConfig& net, util::Rng& rng)
    : obs_(obs),
      policy_(with_ends(ObservationConfig::kFeatures, net.policy_hidden, 1),
              net.activation, rng),
      value_(with_ends(obs.value_feature_dim(), net.value_hidden, 1), net.activation,
             rng) {
  policy_.scale_output_layer(net.policy_output_scale);
}

KernelActorCritic::KernelActorCritic(const ObservationConfig& obs, nn::Mlp policy,
                                     nn::Mlp value)
    : obs_(obs), policy_(std::move(policy)), value_(std::move(value)) {
  check_dims(policy_, ObservationConfig::kFeatures, 1, "kernel policy");
  check_dims(value_, obs.value_feature_dim(), 1, "kernel value");
}

nn::VarPtr KernelActorCritic::policy_logits(const nn::Tensor& policy_obs) const {
  // The kernel trick: one matmul applies the same per-job MLP to every
  // row, yielding an N x 1 score column directly.
  return policy_.forward(nn::constant(policy_obs));
}

nn::VarPtr KernelActorCritic::value(const nn::Tensor& value_obs) const {
  return value_.forward(nn::constant(value_obs));
}

nn::Tensor KernelActorCritic::policy_logits_nograd(const nn::Tensor& policy_obs) const {
  return policy_.forward_value(policy_obs);
}

double KernelActorCritic::value_nograd(const nn::Tensor& value_obs) const {
  return value_.forward_value(value_obs).item();
}

std::vector<nn::Tensor> KernelActorCritic::policy_logits_nograd_batch(
    const std::vector<const nn::Tensor*>& obs) const {
  if (obs.empty()) return {};
  std::size_t total_rows = 0;
  for (const nn::Tensor* o : obs) total_rows += o->rows();
  nn::Tensor stacked(total_rows, ObservationConfig::kFeatures);
  std::size_t at = 0;
  for (const nn::Tensor* o : obs) {
    std::copy(o->data().begin(), o->data().end(),
              stacked.data().begin() + static_cast<std::ptrdiff_t>(
                                           at * ObservationConfig::kFeatures));
    at += o->rows();
  }
  const nn::Tensor scores = policy_.forward_value(stacked);
  std::vector<nn::Tensor> out;
  out.reserve(obs.size());
  at = 0;
  for (const nn::Tensor* o : obs) {
    nn::Tensor piece(o->rows(), 1);
    for (std::size_t r = 0; r < o->rows(); ++r) piece.at(r, 0) = scores.at(at + r, 0);
    out.push_back(std::move(piece));
    at += o->rows();
  }
  return out;
}

std::vector<nn::VarPtr> KernelActorCritic::policy_parameters() const {
  return policy_.parameters();
}

std::vector<nn::VarPtr> KernelActorCritic::value_parameters() const {
  return value_.parameters();
}

std::unique_ptr<rl::ActorCritic> KernelActorCritic::clone() const {
  return std::make_unique<KernelActorCritic>(obs_, policy_.clone(), value_.clone());
}

void KernelActorCritic::sync_from(const rl::ActorCritic& other) {
  const auto* o = dynamic_cast<const KernelActorCritic*>(&other);
  if (o == nullptr) throw std::invalid_argument("sync_from: model type mismatch");
  policy_.copy_parameters_from(o->policy_);
  value_.copy_parameters_from(o->value_);
}

// ---------------- FlatActorCritic ----------------

FlatActorCritic::FlatActorCritic(const ObservationConfig& obs, const NetworkConfig& net,
                                 util::Rng& rng)
    : obs_(obs),
      policy_(with_ends(obs.padded_policy_rows() * ObservationConfig::kFeatures,
                        net.policy_hidden, obs.padded_policy_rows()),
              net.activation, rng),
      value_(with_ends(obs.value_feature_dim(), net.value_hidden, 1), net.activation,
             rng) {
  if (!obs.pad_policy_obs) {
    throw std::invalid_argument(
        "FlatActorCritic requires ObservationConfig::pad_policy_obs");
  }
  policy_.scale_output_layer(net.policy_output_scale);
}

FlatActorCritic::FlatActorCritic(const ObservationConfig& obs, nn::Mlp policy,
                                 nn::Mlp value)
    : obs_(obs), policy_(std::move(policy)), value_(std::move(value)) {
  check_dims(policy_, obs.padded_policy_rows() * ObservationConfig::kFeatures,
             obs.padded_policy_rows(), "flat policy");
  check_dims(value_, obs.value_feature_dim(), 1, "flat value");
}

nn::VarPtr FlatActorCritic::policy_logits(const nn::Tensor& policy_obs) const {
  if (policy_obs.rows() != obs_.padded_policy_rows()) {
    throw std::invalid_argument("flat policy: observation must be padded");
  }
  const nn::VarPtr flat = nn::constant(
      policy_obs.reshaped(1, policy_obs.rows() * policy_obs.cols()));
  return nn::reshape(policy_.forward(flat), obs_.padded_policy_rows(), 1);
}

nn::VarPtr FlatActorCritic::value(const nn::Tensor& value_obs) const {
  return value_.forward(nn::constant(value_obs));
}

nn::Tensor FlatActorCritic::policy_logits_nograd(const nn::Tensor& policy_obs) const {
  const nn::Tensor flat =
      policy_obs.reshaped(1, policy_obs.rows() * policy_obs.cols());
  return policy_.forward_value(flat).reshaped(obs_.padded_policy_rows(), 1);
}

double FlatActorCritic::value_nograd(const nn::Tensor& value_obs) const {
  return value_.forward_value(value_obs).item();
}

std::vector<nn::Tensor> FlatActorCritic::policy_logits_nograd_batch(
    const std::vector<const nn::Tensor*>& obs) const {
  if (obs.empty()) return {};
  const std::size_t flat = obs_.padded_policy_rows() * ObservationConfig::kFeatures;
  nn::Tensor stacked(obs.size(), flat);
  for (std::size_t i = 0; i < obs.size(); ++i) {
    if (obs[i]->size() != flat) {
      throw std::invalid_argument("flat policy: observation must be padded");
    }
    std::copy(obs[i]->data().begin(), obs[i]->data().end(),
              stacked.data().begin() + static_cast<std::ptrdiff_t>(i * flat));
  }
  const nn::Tensor scores = policy_.forward_value(stacked);
  std::vector<nn::Tensor> out;
  out.reserve(obs.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    out.push_back(scores.row(i).reshaped(obs_.padded_policy_rows(), 1));
  }
  return out;
}

std::vector<nn::VarPtr> FlatActorCritic::policy_parameters() const {
  return policy_.parameters();
}

std::vector<nn::VarPtr> FlatActorCritic::value_parameters() const {
  return value_.parameters();
}

std::unique_ptr<rl::ActorCritic> FlatActorCritic::clone() const {
  return std::make_unique<FlatActorCritic>(obs_, policy_.clone(), value_.clone());
}

void FlatActorCritic::sync_from(const rl::ActorCritic& other) {
  const auto* o = dynamic_cast<const FlatActorCritic*>(&other);
  if (o == nullptr) throw std::invalid_argument("sync_from: model type mismatch");
  policy_.copy_parameters_from(o->policy_);
  value_.copy_parameters_from(o->value_);
}

}  // namespace rlbf::core
