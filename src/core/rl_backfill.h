// Deployment-time RLBackfilling: a BackfillChooser that consults a
// trained agent greedily. Plugs into sim::simulate exactly like EASY or
// conservative backfilling, which is how Tables 4 and 5 compare them.
#pragma once

#include <string>

#include "core/agent.h"
#include "sim/event_sim.h"

namespace rlbf::core {

class RlBackfillChooser final : public sim::BackfillChooser {
 public:
  /// The agent must outlive the chooser.
  explicit RlBackfillChooser(const Agent& agent, std::string label = "RLBF");

  std::optional<std::size_t> choose(const sim::BackfillContext& ctx) override;
  std::string name() const override { return label_; }

 private:
  const Agent& agent_;
  std::string label_;
};

}  // namespace rlbf::core
