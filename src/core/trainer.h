// The RLBackfilling training loop (paper §4.1.1): per epoch, sample
// `trajectories_per_epoch` random sequences of `jobs_per_trajectory`
// consecutive jobs from the training trace, schedule each with the base
// policy + the sampling TrainingEnv (collected in parallel across a
// thread pool with per-worker model replicas), then run one PPO update
// (80 policy/value iterations, lr 1e-3 by default).
//
// The reward baseline for every sequence — FCFS + SJF-ordered EASY
// backfilling — is simulated once per sequence inside the worker.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/backfill_env.h"
#include "obs/series.h"
#include "rl/collect.h"
#include "rl/ppo.h"
#include "sched/scheduler.h"
#include "util/thread_pool.h"

namespace rlbf::core {

struct TrainerConfig {
  std::string base_policy = "FCFS";
  std::size_t epochs = 50;
  std::size_t trajectories_per_epoch = 100;  // paper: 100
  std::size_t jobs_per_trajectory = 256;     // paper: 256
  rl::PpoConfig ppo;                         // paper: 80 iters, lr 1e-3
  EnvConfig env;
  AgentConfig agent;
  std::uint64_t seed = 1;
  /// Collection/update worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;

  /// Every `eval_every` epochs, evaluate the *greedy* policy on held-out
  /// sampled sequences; with keep_best the final agent is the best such
  /// checkpoint (the sampled-policy training reward is a poor proxy for
  /// greedy deployment quality). 0 disables evaluation.
  std::size_t eval_every = 5;
  std::size_t eval_samples = 6;
  std::size_t eval_sample_jobs = 1024;
  bool keep_best = true;
};

struct EpochStats {
  std::size_t epoch = 0;
  double mean_reward = 0.0;        // mean episode return (paper's Fig. 4 y-axis
                                   // is equivalent information as bsld)
  double mean_bsld = 0.0;          // mean agent bsld across trajectories
  double mean_baseline_bsld = 0.0; // mean SJF-backfill baseline bsld
  std::size_t steps = 0;           // decisions collected
  rl::PpoStats ppo;
  double wall_seconds = 0.0;
  /// Greedy held-out evaluation bsld; NaN on non-evaluation epochs.
  double eval_bsld = std::numeric_limits<double>::quiet_NaN();
};

class Trainer {
 public:
  /// `trace` is copied; training samples windows from it.
  Trainer(swf::Trace trace, const TrainerConfig& config);
  /// Warm start: fine-tune a copy of `initial` — e.g. a model trained on
  /// another trace (the Table-5 transfer setting) — instead of a fresh
  /// agent. The initial agent's observation/network configuration takes
  /// precedence over config.agent, which is ignored.
  Trainer(swf::Trace trace, const TrainerConfig& config, const Agent& initial);

  /// Collect one epoch of trajectories and update the agent.
  EpochStats run_epoch();

  /// Run config.epochs epochs; `on_epoch` (optional) observes progress.
  /// With keep_best, the agent is restored to the best greedy checkpoint
  /// before returning.
  std::vector<EpochStats> train(
      const std::function<void(const EpochStats&)>& on_epoch = nullptr);

  /// Greedy evaluation of the current agent over eval_samples held-out
  /// sequences (mean bsld).
  double evaluate_greedy();

  Agent& agent() { return agent_; }
  const Agent& agent() const { return agent_; }
  const TrainerConfig& config() const { return config_; }

  /// Swap the rollout transport (borrowed; must outlive the trainer).
  /// nullptr restores the default in-process ThreadCollector. The epoch
  /// protocol is transport-independent: seeds are pre-drawn here and
  /// results consumed in sequence order, so any conforming collector
  /// yields byte-identical training.
  void set_collector(rl::Collector* collector) {
    collector_ = collector != nullptr ? collector : &thread_collector_;
  }

  /// Attach a time-series recorder (borrowed; must outlive the
  /// trainer). Each epoch records the train.* curves keyed by epoch
  /// number. nullptr (the default) records nothing — recording is a
  /// pure observer and never alters training.
  void set_series(obs::SeriesRecorder* series) { series_ = series; }

 private:
  /// Record one epoch's train.* points into series_ (no-op when null).
  void record_epoch_series(const EpochStats& s) const;

  swf::Trace trace_;
  TrainerConfig config_;
  Agent agent_;
  std::unique_ptr<sim::PriorityPolicy> policy_;
  sched::RequestTimeEstimator estimator_;
  util::ThreadPool pool_;
  rl::ThreadCollector thread_collector_{pool_};
  rl::Collector* collector_ = &thread_collector_;
  rl::Ppo ppo_;
  util::Rng rng_;
  std::size_t epoch_ = 0;
  double best_eval_bsld_ = std::numeric_limits<double>::infinity();
  std::unique_ptr<rl::ActorCritic> best_model_;
  obs::SeriesRecorder* series_ = nullptr;
};

}  // namespace rlbf::core
