#include "core/evaluation.h"

#include <stdexcept>

#include "core/rl_backfill.h"
#include "util/stats.h"

namespace rlbf::core {

EvalResult evaluate(const swf::Trace& trace, const sim::PriorityPolicy& policy,
                    const sim::RuntimeEstimator& estimator,
                    sim::BackfillChooser* chooser, const EvalProtocol& protocol) {
  // The sampling stream depends only on (seed): every configuration
  // evaluated with the same protocol sees the same sequences.
  util::Rng rng(protocol.seed ^ 0xe5a1e5a1e5a1ull);
  EvalResult result;
  result.samples.reserve(protocol.samples);
  for (std::size_t s = 0; s < protocol.samples; ++s) {
    const swf::Trace seq = trace.sample(protocol.sample_jobs, rng);
    const auto outcome =
        sched::run_schedule(seq, policy, estimator, chooser, protocol.options);
    result.samples.push_back(outcome.metrics.avg_bounded_slowdown);
  }
  result.mean = util::mean(result.samples);
  if (result.samples.size() > 1) {
    util::Rng boot(protocol.seed ^ 0xb0075742ull);
    const util::BootstrapCi ci =
        util::bootstrap_mean_ci(result.samples, boot, protocol.bootstrap_resamples);
    result.ci_lo = ci.lo;
    result.ci_hi = ci.hi;
  } else {
    result.ci_lo = result.ci_hi = result.mean;
  }
  return result;
}

EvalResult evaluate_spec(const swf::Trace& trace, const sched::SchedulerSpec& spec,
                         const EvalProtocol& protocol) {
  if (spec.uses_agent()) {
    throw std::invalid_argument(
        "evaluate_spec: spec references agent '" + spec.agent +
        "'; use exp::evaluate_scenario (which resolves model-store "
        "references) or evaluate_agent with a loaded agent");
  }
  const sched::ConfiguredScheduler scheduler(spec);
  return evaluate(trace, scheduler.policy(), scheduler.estimator(),
                  scheduler.chooser(), protocol);
}

EvalResult evaluate_agent(const swf::Trace& trace, const Agent& agent,
                          const std::string& base_policy,
                          const EvalProtocol& protocol) {
  const auto policy = sched::make_policy(base_policy);
  sched::RequestTimeEstimator estimator;
  RlBackfillChooser chooser(agent);
  return evaluate(trace, *policy, estimator, &chooser, protocol);
}

}  // namespace rlbf::core
