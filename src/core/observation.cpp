#include "core/observation.h"

#include <algorithm>
#include <cmath>

#include "sched/easy_backfill.h"

namespace rlbf::core {

namespace {
constexpr double kWeek = 7.0 * 24.0 * 3600.0;

double log_scale(double seconds) {
  return std::log1p(std::max(seconds, 0.0)) / std::log1p(kWeek);
}
}  // namespace

bool PolicyObservation::any_selectable() const {
  return std::any_of(mask.begin(), mask.end(), [](std::uint8_t m) { return m != 0; });
}

ObservationBuilder::ObservationBuilder(const ObservationConfig& config)
    : config_(config) {
  if (config.stop_action && !config.feature_enabled(8)) {
    throw std::invalid_argument(
        "ObservationConfig: the stop-row indicator (feature 8) cannot be "
        "disabled while stop_action is on");
  }
}

std::vector<std::size_t> ObservationBuilder::observed_queue(
    const sim::BackfillContext& ctx, std::size_t limit) const {
  // Paper §3.2: sort by submission time; cut off FCFS-style. The sort
  // always covers the full queue before truncating, so one sorted copy
  // per decision serves both the policy view (max_obsv_size) and the
  // value view (value_obsv_size); the simulator invalidates the cache
  // slot before every decision.
  std::vector<std::size_t> q;
  const std::vector<std::size_t>* cached =
      ctx.cache != nullptr ? ctx.cache->sorted_queue() : nullptr;
  if (cached != nullptr) {
    q = *cached;
  } else {
    q.assign(ctx.queue.begin(), ctx.queue.end());
    std::stable_sort(q.begin(), q.end(), [&](std::size_t a, std::size_t b) {
      return ctx.trace[a].submit_time < ctx.trace[b].submit_time;
    });
    if (ctx.cache != nullptr) ctx.cache->mutable_sorted_queue() = q;
  }
  if (q.size() > limit) q.resize(limit);
  return q;
}

void ObservationBuilder::fill_row(nn::Tensor& obs, std::size_t row,
                                  std::size_t job_index,
                                  const sim::BackfillContext& ctx) const {
  const swf::Job& job = ctx.trace[job_index];
  const double wt = static_cast<double>(std::max<std::int64_t>(ctx.now - job.submit_time, 0));
  const double rt = static_cast<double>(std::max<std::int64_t>(job.request_time(), 1));
  // The estimate and the log-scaled per-job features are pure functions
  // of the job, so the per-simulation cache memoizes them; the cached
  // values are the identical bits the direct computation yields. Both
  // are strictly positive (rt, est >= 1), so < 0 marks an empty slot.
  const double est = static_cast<double>(
      ctx.cache != nullptr ? ctx.cache->estimate(ctx.estimator, ctx.trace, job_index)
                           : ctx.estimator.estimate(job));
  double log_rt;
  double log_est;
  if (ctx.cache != nullptr) {
    double& rt_slot = ctx.cache->log_request_slot(job_index);
    if (rt_slot < 0.0) rt_slot = log_scale(rt);
    log_rt = rt_slot;
    double& est_slot = ctx.cache->log_estimate_slot(job_index);
    if (est_slot < 0.0) est_slot = log_scale(est);
    log_est = est_slot;
  } else {
    log_rt = log_scale(rt);
    log_est = log_scale(est);
  }
  const double shadow_gap =
      static_cast<double>(std::max<std::int64_t>(ctx.reservation.shadow_time - ctx.now, 1));
  const double slack = std::clamp((shadow_gap - est) / shadow_gap, -1.0, 1.0);
  obs.at(row, 0) = log_scale(wt);
  obs.at(row, 1) = log_rt;
  obs.at(row, 2) = static_cast<double>(job.procs()) /
                   static_cast<double>(ctx.trace.machine_procs());
  obs.at(row, 3) = ctx.cluster.can_fit(job.procs()) ? 1.0 : 0.0;
  obs.at(row, 4) = log_est;
  obs.at(row, 5) = slack;
  obs.at(row, 6) = ctx.cluster.free_fraction();
  obs.at(row, 7) = (job_index == ctx.rjob) ? 1.0 : 0.0;
  const double free_procs =
      std::max(static_cast<double>(ctx.cluster.free_procs()), 1.0);
  obs.at(row, 9) = std::min(static_cast<double>(job.procs()) / free_procs, 1.0);
  if (config_.feature_mask != 0x3FF) {
    for (std::size_t f = 0; f < ObservationConfig::kFeatures; ++f) {
      if (!config_.feature_enabled(f)) obs.at(row, f) = 0.0;
    }
  }
}

PolicyObservation ObservationBuilder::build_policy(const sim::BackfillContext& ctx,
                                                   bool admissible_only) const {
  const std::vector<std::size_t> observed = observed_queue(ctx, config_.max_obsv_size);
  const std::size_t rows = config_.pad_policy_obs
                               ? config_.padded_policy_rows()
                               : observed.size() + (config_.stop_action ? 1 : 0);

  PolicyObservation po;
  po.obs = nn::Tensor::zeros(rows, ObservationConfig::kFeatures);
  po.mask.assign(rows, 0);
  po.row_to_candidate.assign(rows, kNoCandidate);

  if (config_.stop_action) {
    // The stop row lives at the fixed last index so the flat (padded)
    // policy sees it at a stable position.
    const std::size_t stop_row = rows - 1;
    po.obs.at(stop_row, 6) = ctx.cluster.free_fraction();
    po.obs.at(stop_row, 8) = 1.0;
    po.mask[stop_row] = 1;
    po.row_to_candidate[stop_row] = kStopAction;
  }

  for (std::size_t r = 0; r < observed.size(); ++r) {
    const std::size_t job_idx = observed[r];
    fill_row(po.obs, r, job_idx, ctx);
    if (job_idx == ctx.rjob) continue;  // present but never selectable
    const auto it = std::find(ctx.candidates.begin(), ctx.candidates.end(), job_idx);
    if (it == ctx.candidates.end()) continue;  // does not fit right now
    if ((admissible_only || config_.mask_inadmissible) &&
        !sched::EasyBackfillChooser::admissible_with_estimate(
            ctx.trace[job_idx], ctx.reservation,
            sim::context_estimate(ctx, job_idx), ctx.now)) {
      continue;
    }
    po.mask[r] = 1;
    po.row_to_candidate[r] =
        static_cast<std::size_t>(std::distance(ctx.candidates.begin(), it));
  }
  return po;
}

nn::Tensor ObservationBuilder::build_value(const sim::BackfillContext& ctx) const {
  const std::vector<std::size_t> observed =
      observed_queue(ctx, config_.value_obsv_size);
  nn::Tensor jobs = nn::Tensor::zeros(config_.value_obsv_size,
                                      ObservationConfig::kFeatures);
  for (std::size_t r = 0; r < observed.size(); ++r) {
    fill_row(jobs, r, observed[r], ctx);
  }
  return jobs.reshaped(1, config_.value_feature_dim());
}

}  // namespace rlbf::core
