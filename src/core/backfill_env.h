// Training-time environment adapter (paper §3.4): a BackfillChooser
// that samples actions from the agent's policy, records one rl::Step
// per backfilling decision, and shapes rewards:
//
//  * every non-terminal step's reward is 0 — the bounded-slowdown
//    objective only exists once the whole sequence is scheduled;
//  * a decision that would delay the blocked job's reservation (the
//    EASY admissibility test fails under the estimates) incurs the
//    paper's "large negative reward" at that step;
//  * at episode end the terminal step receives
//        (bsld_baseline − bsld_agent) / bsld_baseline,
//    the percentage improvement over the paper's reward baseline
//    (FCFS base + SJF-ordered EASY backfilling on the same sequence),
//    which the trainer supplies via set_baseline_bsld().
#pragma once

#include <optional>

#include "core/agent.h"
#include "rl/rollout.h"
#include "sim/event_sim.h"
#include "util/rng.h"

namespace rlbf::core {

/// How "backfilled jobs must not delay the selected job" is enforced.
enum class DelayRule {
  /// The paper's mechanism: a pick failing the EASY admissibility test
  /// *under the estimates* earns an immediate negative reward. Ablation
  /// A2 shows flat estimate-based penalties push the agent toward never
  /// backfilling — penalty avoidance dominates the terminal reward.
  EstimatePenalty,
  /// Penalize only picks whose reserved job *actually* started later
  /// than its reservation at decision time (checked retroactively at
  /// episode end). Grants the aggressive-backfill freedom EASY-AR
  /// enjoys, but the credit assignment is diffuse (every pick during a
  /// delayed job's wait is charged) and training oscillates — see
  /// ablation A2.
  ActualDelayPenalty,
  /// Hard-mask EASY-inadmissible candidates (the agent can then never
  /// delay the reserved job under the estimates, like EASY itself).
  /// Default: trains stably and reproduces the paper's headline.
  HardMask,
};

/// The scheduling metric the terminal reward optimizes. The paper trains
/// on average bounded slowdown and names other goals (average waiting
/// time, ...) as future work; all three are supported here.
enum class RewardObjective {
  BoundedSlowdown,  // paper default
  AvgWaitTime,
  AvgTurnaround,
};

/// Aggregate the chosen objective over a finished schedule.
double objective_value(RewardObjective objective,
                       const std::vector<sim::JobResult>& results);

/// How the env turns the model's per-candidate scores into an action.
enum class ActionSelection {
  /// Softmax over the scores, sampled — PPO/REINFORCE exploration.
  SampleSoftmax,
  /// Argmax with probability 1 - epsilon, uniform over valid rows with
  /// probability epsilon — DQN exploration over Q-values (a softmax over
  /// Q would misread value magnitudes as a policy temperature).
  EpsilonGreedy,
  /// Pure argmax (greedy evaluation through the env).
  Greedy,
};

struct EnvConfig {
  /// Magnitude of the negative reward under either penalty rule.
  double delay_penalty = 2.0;
  DelayRule delay_rule = DelayRule::HardMask;
  RewardObjective objective = RewardObjective::BoundedSlowdown;
  ActionSelection selection = ActionSelection::SampleSoftmax;
  /// Exploration rate when selection == EpsilonGreedy; the DQN trainer
  /// re-sets it per epoch from its decay schedule.
  double epsilon = 0.1;

  /// Back-compat alias: sample (training) vs argmax (greedy evaluation).
  bool sample_actions = true;

  ActionSelection effective_selection() const {
    if (selection == ActionSelection::SampleSoftmax && !sample_actions) {
      return ActionSelection::Greedy;
    }
    return selection;
  }
  bool mask_delaying() const { return delay_rule == DelayRule::HardMask; }
};

class TrainingEnv final : public sim::BackfillChooser {
 public:
  /// The agent must outlive the env. `rng` drives action sampling.
  TrainingEnv(Agent& agent, const EnvConfig& config, util::Rng rng);

  /// Must be called before each episode with the baseline objective
  /// value (bsld by default) of the exact sequence about to be
  /// scheduled.
  void set_baseline_bsld(double bsld);

  std::optional<std::size_t> choose(const sim::BackfillContext& ctx) override;
  void episode_begin(const swf::Trace& trace) override;
  void episode_end(const std::vector<sim::JobResult>& results) override;
  std::string name() const override { return "RLBF-train"; }

  /// Retrieve (and clear) the finished episode. Valid after the
  /// simulation returns; throws if the episode never ended.
  rl::Episode take_episode();

  /// Agent objective value (bsld by default) of the last episode.
  double last_bsld() const { return last_bsld_; }
  double baseline_bsld() const { return baseline_bsld_; }

 private:
  /// Deferred actual-delay check: did `rjob` start after the reservation
  /// it held when the decision at `step_index` was made?
  struct PendingDelayCheck {
    std::size_t step_index;
    std::size_t rjob;
    std::int64_t shadow_time;
  };

  Agent& agent_;
  EnvConfig config_;
  util::Rng rng_;
  rl::Episode episode_;
  std::vector<PendingDelayCheck> pending_checks_;
  double baseline_bsld_ = 0.0;
  double last_bsld_ = 0.0;
  bool episode_open_ = false;
  bool episode_ready_ = false;
};

}  // namespace rlbf::core
