// The two RLBackfilling actor-critic variants.
//
// KernelActorCritic (paper §3.3): the policy is a small 3-hidden-layer
// MLP applied to *each job vector independently* (a batched matmul over
// the observation rows), producing one score per job; masked softmax
// over the scores gives the backfill distribution. Order-insensitive
// and parameter-light by construction. The critic is a plain MLP over
// the flattened fixed-size observation.
//
// FlatActorCritic (ablation A1): the policy is an MLP over the whole
// flattened, zero-padded observation emitting MAX_OBSV_SIZE logits —
// the design the paper's kernel network is contrasted against.
#pragma once

#include <memory>

#include "core/observation.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "rl/ppo.h"

namespace rlbf::core {

struct NetworkConfig {
  std::vector<std::size_t> policy_hidden = {32, 16, 8};
  std::vector<std::size_t> value_hidden = {64, 32};
  nn::Activation activation = nn::Activation::Relu;
  /// Scale of the policy head's output layer at init. Small values keep
  /// the initial softmax near-uniform over candidates so exploration
  /// and log-prob gradients survive the first epochs.
  double policy_output_scale = 0.01;
};

class KernelActorCritic final : public rl::ActorCritic {
 public:
  KernelActorCritic(const ObservationConfig& obs, const NetworkConfig& net,
                    util::Rng& rng);
  /// Reconstruct from saved networks (shape-checked).
  KernelActorCritic(const ObservationConfig& obs, nn::Mlp policy, nn::Mlp value);

  nn::VarPtr policy_logits(const nn::Tensor& policy_obs) const override;
  nn::VarPtr value(const nn::Tensor& value_obs) const override;
  nn::Tensor policy_logits_nograd(const nn::Tensor& policy_obs) const override;
  double value_nograd(const nn::Tensor& value_obs) const override;
  /// Kernel batching: all observations' job rows concatenate into ONE
  /// matrix-matrix forward (the kernel scores rows independently), then
  /// split back per observation — bit-identical to per-observation calls.
  std::vector<nn::Tensor> policy_logits_nograd_batch(
      const std::vector<const nn::Tensor*>& obs) const override;
  std::vector<nn::VarPtr> policy_parameters() const override;
  std::vector<nn::VarPtr> value_parameters() const override;
  std::unique_ptr<rl::ActorCritic> clone() const override;
  void sync_from(const rl::ActorCritic& other) override;

  const nn::Mlp& policy_net() const { return policy_; }
  const nn::Mlp& value_net() const { return value_; }

 private:
  ObservationConfig obs_;
  nn::Mlp policy_;  // per-row kernel: [F, hidden..., 1]
  nn::Mlp value_;   // [value_feature_dim, hidden..., 1]
};

class FlatActorCritic final : public rl::ActorCritic {
 public:
  FlatActorCritic(const ObservationConfig& obs, const NetworkConfig& net,
                  util::Rng& rng);
  FlatActorCritic(const ObservationConfig& obs, nn::Mlp policy, nn::Mlp value);

  nn::VarPtr policy_logits(const nn::Tensor& policy_obs) const override;
  nn::VarPtr value(const nn::Tensor& value_obs) const override;
  nn::Tensor policy_logits_nograd(const nn::Tensor& policy_obs) const override;
  double value_nograd(const nn::Tensor& value_obs) const override;
  /// Flat batching: the padded observations each flatten to one row, so
  /// B observations stack into a B-row matrix for one forward pass.
  std::vector<nn::Tensor> policy_logits_nograd_batch(
      const std::vector<const nn::Tensor*>& obs) const override;
  std::vector<nn::VarPtr> policy_parameters() const override;
  std::vector<nn::VarPtr> value_parameters() const override;
  std::unique_ptr<rl::ActorCritic> clone() const override;
  void sync_from(const rl::ActorCritic& other) override;

  const nn::Mlp& policy_net() const { return policy_; }
  const nn::Mlp& value_net() const { return value_; }

 private:
  ObservationConfig obs_;
  nn::Mlp policy_;  // [max_obsv_size * F, hidden..., max_obsv_size]
  nn::Mlp value_;
};

}  // namespace rlbf::core
