// The RLBackfilling agent: observation builder + actor-critic model +
// persistence. Training (core/trainer.h) mutates the model in place;
// deployment (core/rl_backfill.h) queries it greedily — "during testing,
// we directly select the job with the highest probability".
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/networks.h"

namespace rlbf::core {

struct AgentConfig {
  ObservationConfig obs;
  NetworkConfig net;
  /// Kernel policy (the paper's design) vs flat MLP (ablation A1).
  bool kernel_policy = true;
};

class Agent {
 public:
  /// Fresh randomly initialized agent.
  Agent(const AgentConfig& config, std::uint64_t seed);
  /// Wrap an existing model (takes ownership).
  Agent(const AgentConfig& config, std::unique_ptr<rl::ActorCritic> model);

  const AgentConfig& config() const { return config_; }
  rl::ActorCritic& model() { return *model_; }
  const rl::ActorCritic& model() const { return *model_; }
  const ObservationBuilder& observer() const { return observer_; }

  /// Independent copy (worker replicas, checkpointing).
  Agent clone() const;

  /// Greedy action for one backfilling opportunity: index into
  /// ctx.candidates, or nullopt when every candidate is masked/cut off.
  std::optional<std::size_t> choose_greedy(const sim::BackfillContext& ctx) const;

  /// Persistence. `meta` is stored verbatim (trace name, epochs, ...).
  bool save(const std::string& path,
            const std::map<std::string, std::string>& meta = {}) const;
  /// Throws std::runtime_error on unreadable/ill-formed files.
  static Agent load(const std::string& path);
  /// Metadata stored alongside a saved agent.
  static std::map<std::string, std::string> load_meta(const std::string& path);

 private:
  AgentConfig config_;
  ObservationBuilder observer_;
  std::unique_ptr<rl::ActorCritic> model_;
};

}  // namespace rlbf::core
