#include "core/backfill_env.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rl/ppo.h"
#include "sched/easy_backfill.h"
#include "sim/metrics.h"

namespace rlbf::core {

double objective_value(RewardObjective objective,
                       const std::vector<sim::JobResult>& results) {
  // Machine size only affects utilization, which no objective reads.
  const sim::ScheduleMetrics m = sim::compute_metrics(results, 1);
  switch (objective) {
    case RewardObjective::BoundedSlowdown: return m.avg_bounded_slowdown;
    case RewardObjective::AvgWaitTime: return m.avg_wait_time;
    case RewardObjective::AvgTurnaround: return m.avg_turnaround;
  }
  throw std::logic_error("unknown reward objective");
}

TrainingEnv::TrainingEnv(Agent& agent, const EnvConfig& config, util::Rng rng)
    : agent_(agent), config_(config), rng_(rng) {}

void TrainingEnv::set_baseline_bsld(double bsld) {
  if (bsld <= 0.0) throw std::invalid_argument("baseline bsld must be positive");
  baseline_bsld_ = bsld;
}

void TrainingEnv::episode_begin(const swf::Trace& trace) {
  (void)trace;
  if (baseline_bsld_ <= 0.0) {
    throw std::logic_error("TrainingEnv: set_baseline_bsld before simulating");
  }
  episode_ = rl::Episode{};
  pending_checks_.clear();
  episode_open_ = true;
  episode_ready_ = false;
}

std::optional<std::size_t> TrainingEnv::choose(const sim::BackfillContext& ctx) {
  if (!episode_open_) throw std::logic_error("TrainingEnv: choose outside episode");
  const PolicyObservation po =
      agent_.observer().build_policy(ctx, /*admissible_only=*/config_.mask_delaying());
  if (!po.any_selectable()) return std::nullopt;

  const nn::Tensor logits = agent_.model().policy_logits_nograd(po.obs);
  // Normalized log-prob of a given row under softmax(logits[mask]);
  // recorded for every selection mode (PPO requires it; for the others
  // it is diagnostic only).
  const auto log_prob_of = [&](std::size_t r) {
    double zmax = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < po.mask.size(); ++i) {
      if (po.mask[i]) zmax = std::max(zmax, logits.at(i, 0));
    }
    double lse = 0.0;
    for (std::size_t i = 0; i < po.mask.size(); ++i) {
      if (po.mask[i]) lse += std::exp(logits.at(i, 0) - zmax);
    }
    return logits.at(r, 0) - (zmax + std::log(lse));
  };

  std::size_t row;
  double log_prob;
  switch (config_.effective_selection()) {
    case ActionSelection::SampleSoftmax: {
      const rl::CategoricalSample s = rl::sample_masked(logits, po.mask, rng_);
      row = s.action;
      log_prob = s.log_prob;
      break;
    }
    case ActionSelection::EpsilonGreedy: {
      if (rng_.bernoulli(config_.epsilon)) {
        std::vector<std::size_t> valid;
        for (std::size_t i = 0; i < po.mask.size(); ++i) {
          if (po.mask[i]) valid.push_back(i);
        }
        row = valid[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(valid.size()) - 1))];
      } else {
        row = rl::argmax_masked(logits, po.mask);
      }
      log_prob = log_prob_of(row);
      break;
    }
    case ActionSelection::Greedy: {
      row = rl::argmax_masked(logits, po.mask);
      log_prob = log_prob_of(row);
      break;
    }
    default:
      throw std::logic_error("unknown action selection");
  }
  const std::size_t candidate = po.row_to_candidate[row];

  rl::Step step;
  step.policy_obs = po.obs;
  step.mask = po.mask;
  step.action = row;
  step.log_prob = log_prob;
  step.value_obs = agent_.observer().build_value(ctx);
  step.value = agent_.model().value_nograd(step.value_obs);
  step.reward = 0.0;
  if (candidate != kStopAction) {
    if (config_.delay_rule == DelayRule::EstimatePenalty) {
      const std::size_t job_idx = ctx.candidates[candidate];
      if (!sched::EasyBackfillChooser::admissible_with_estimate(
              ctx.trace[job_idx], ctx.reservation,
              sim::context_estimate(ctx, job_idx), ctx.now)) {
        step.reward -= config_.delay_penalty;
      }
    } else if (config_.delay_rule == DelayRule::ActualDelayPenalty) {
      pending_checks_.push_back(
          {episode_.steps.size(), ctx.rjob, ctx.reservation.shadow_time});
    }
  }
  episode_.steps.push_back(std::move(step));
  if (candidate == kStopAction) return std::nullopt;
  return candidate;
}

void TrainingEnv::episode_end(const std::vector<sim::JobResult>& results) {
  if (!episode_open_) throw std::logic_error("TrainingEnv: episode_end without begin");
  // Retroactive actual-delay penalties: charge every pick made while a
  // reserved job that ended up late was blocked.
  for (const auto& check : pending_checks_) {
    if (check.rjob < results.size() &&
        results[check.rjob].start_time > check.shadow_time) {
      episode_.steps[check.step_index].reward -= config_.delay_penalty;
    }
  }
  last_bsld_ = objective_value(config_.objective, results);
  if (!episode_.steps.empty() && last_bsld_ > 0.0) {
    episode_.steps.back().reward +=
        (baseline_bsld_ - last_bsld_) / baseline_bsld_;
  }
  episode_open_ = false;
  episode_ready_ = true;
  baseline_bsld_ = 0.0;  // force the caller to set it again next episode
}

rl::Episode TrainingEnv::take_episode() {
  if (!episode_ready_) throw std::logic_error("TrainingEnv: no finished episode");
  episode_ready_ = false;
  return std::move(episode_);
}

}  // namespace rlbf::core
