#include "nn/optim.h"

#include <cmath>
#include <stdexcept>

namespace rlbf::nn {

Optimizer::Optimizer(std::vector<VarPtr> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    if (!p || !p->requires_grad) {
      throw std::invalid_argument("Optimizer: parameter without requires_grad");
    }
  }
}

void Optimizer::zero_grad() {
  for (const auto& p : params_) p->zero_grad();
}

double Optimizer::clip_grad_norm(double max_norm) {
  double total = 0.0;
  for (const auto& p : params_) {
    if (!p->has_grad()) continue;
    const double n = p->grad.norm();
    total += n * n;
  }
  total = std::sqrt(total);
  if (total > max_norm && total > 0.0) {
    const double scale = max_norm / total;
    for (const auto& p : params_) {
      if (p->has_grad()) p->grad.mul_(scale);
    }
  }
  return total;
}

Sgd::Sgd(std::vector<VarPtr> params, double lr) : Optimizer(std::move(params)), lr_(lr) {}

void Sgd::step() {
  for (const auto& p : params_) {
    if (!p->has_grad()) continue;
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      p->value[i] -= lr_ * p->grad[i];
    }
  }
}

Adam::Adam(std::vector<VarPtr> params, double lr, double beta1, double beta2, double eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::zeros(p->value.rows(), p->value.cols()));
    v_.push_back(Tensor::zeros(p->value.rows(), p->value.cols()));
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    if (!p->has_grad()) continue;
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double g = p->grad[i];
      m_[k][i] = beta1_ * m_[k][i] + (1.0 - beta1_) * g;
      v_[k][i] = beta2_ * v_[k][i] + (1.0 - beta2_) * g * g;
      const double mhat = m_[k][i] / bc1;
      const double vhat = v_[k][i] / bc2;
      p->value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace rlbf::nn
