// Model (de)serialization: a small self-describing text format so
// trained RLBackfilling agents can be saved by the trainer and reloaded
// by benches and examples.
//
//   rlbf-model v1
//   meta <key> <value>          (0+ lines, free-form metadata)
//   mlp <name> <ndims> <dims...> <activation>
//   tensor <rows> <cols>
//   <values...>                  (row-major, one row per line)
//
// Values round-trip exactly via hexfloat.
#pragma once

#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace rlbf::nn {

/// A named bundle of MLPs plus metadata (e.g. the RLBackfilling agent's
/// policy + value networks, trace name, training epochs).
struct ModelBundle {
  std::map<std::string, std::string> meta;
  std::vector<std::pair<std::string, Mlp>> mlps;

  const Mlp* find(const std::string& name) const;
};

void save_model(std::ostream& out, const ModelBundle& bundle);
bool save_model_file(const std::string& path, const ModelBundle& bundle);

/// Throws std::runtime_error on format errors.
ModelBundle load_model(std::istream& in);
ModelBundle load_model_file(const std::string& path);

/// Metadata only: stops reading at the first `mlp` tag, so listing a
/// model store never parses tensor data. Same validation/errors as
/// load_model for the part it reads.
std::map<std::string, std::string> load_model_meta(std::istream& in);
std::map<std::string, std::string> load_model_meta_file(const std::string& path);

}  // namespace rlbf::nn
