#include "nn/autograd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "obs/metrics.h"

namespace rlbf::nn {

void Variable::accumulate_grad(const Tensor& g) {
  if (!has_grad()) {
    grad = Tensor::zeros(value.rows(), value.cols());
  }
  grad.add_(g);
}

void Variable::zero_grad() {
  if (grad.size() > 0) grad.fill(0.0);
}

VarPtr make_var(Tensor value, bool requires_grad) {
  return std::make_shared<Variable>(std::move(value), requires_grad);
}

VarPtr constant(Tensor value) { return make_var(std::move(value), false); }

VarPtr scalar(double v) { return constant(Tensor::full(1, 1, v)); }

namespace {

/// Whether gradient needs to flow into `v`'s subgraph.
bool needs_grad(const VarPtr& v) {
  return v->requires_grad || !v->parents.empty() || v->backward_fn != nullptr;
}

VarPtr make_op(Tensor value, std::vector<VarPtr> parents, std::function<void()> fn) {
  auto out = make_var(std::move(value), false);
  bool any = false;
  for (const auto& p : parents) any = any || needs_grad(p);
  if (any) {
    out->parents = std::move(parents);
    out->backward_fn = std::move(fn);
  }
  return out;
}

}  // namespace

VarPtr add(const VarPtr& a, const VarPtr& b) {
  const Tensor& av = a->value;
  const Tensor& bv = b->value;
  Tensor out = av;
  if (bv.same_shape(av)) {
    out.add_(bv);
  } else if (bv.rows() == 1 && bv.cols() == av.cols()) {
    for (std::size_t r = 0; r < av.rows(); ++r) {
      for (std::size_t c = 0; c < av.cols(); ++c) out.at(r, c) += bv.at(0, c);
    }
  } else if (bv.size() == 1) {
    const double s = bv[0];
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += s;
  } else {
    throw std::invalid_argument("add: incompatible shapes " + av.shape_str() + " + " +
                                bv.shape_str());
  }
  auto result = make_op(std::move(out), {a, b}, nullptr);
  if (result->parents.empty()) return result;
  std::weak_ptr<Variable> wr = result;
  result->backward_fn = [a, b, wr] {
    const auto r = wr.lock();
    const Tensor& g = r->grad;
    a->accumulate_grad(g);
    const Tensor& bv = b->value;
    if (bv.same_shape(a->value)) {
      b->accumulate_grad(g);
    } else if (bv.rows() == 1 && bv.cols() == g.cols()) {
      Tensor gb(1, g.cols());
      for (std::size_t r2 = 0; r2 < g.rows(); ++r2) {
        for (std::size_t c = 0; c < g.cols(); ++c) gb.at(0, c) += g.at(r2, c);
      }
      b->accumulate_grad(gb);
    } else {  // scalar broadcast
      b->accumulate_grad(Tensor::full(1, 1, g.sum()));
    }
  };
  return result;
}

VarPtr sub(const VarPtr& a, const VarPtr& b) { return add(a, neg(b)); }

VarPtr mul(const VarPtr& a, const VarPtr& b) {
  if (!a->value.same_shape(b->value)) {
    throw std::invalid_argument("mul: shape mismatch " + a->value.shape_str() + " * " +
                                b->value.shape_str());
  }
  Tensor out = a->value;
  out.hadamard_(b->value);
  auto result = make_op(std::move(out), {a, b}, nullptr);
  if (result->parents.empty()) return result;
  std::weak_ptr<Variable> wr = result;
  result->backward_fn = [a, b, wr] {
    const auto r = wr.lock();
    Tensor ga = r->grad;
    ga.hadamard_(b->value);
    a->accumulate_grad(ga);
    Tensor gb = r->grad;
    gb.hadamard_(a->value);
    b->accumulate_grad(gb);
  };
  return result;
}

VarPtr mul_scalar(const VarPtr& a, double s) {
  Tensor out = a->value;
  out.mul_(s);
  auto result = make_op(std::move(out), {a}, nullptr);
  if (result->parents.empty()) return result;
  std::weak_ptr<Variable> wr = result;
  result->backward_fn = [a, s, wr] {
    Tensor g = wr.lock()->grad;
    g.mul_(s);
    a->accumulate_grad(g);
  };
  return result;
}

VarPtr neg(const VarPtr& a) { return mul_scalar(a, -1.0); }

VarPtr matmul(const VarPtr& a, const VarPtr& b) {
  Tensor out;
  Tensor::matmul_into(a->value, b->value, out);
  auto result = make_op(std::move(out), {a, b}, nullptr);
  if (result->parents.empty()) return result;
  std::weak_ptr<Variable> wr = result;
  result->backward_fn = [a, b, wr] {
    const auto r = wr.lock();
    const Tensor& g = r->grad;
    // dA = G * B^T ; dB = A^T * G
    Tensor ga;
    Tensor::matmul_into(g, b->value, ga, false, true);
    a->accumulate_grad(ga);
    Tensor gb;
    Tensor::matmul_into(a->value, g, gb, true, false);
    b->accumulate_grad(gb);
  };
  return result;
}

namespace {

/// Unary elementwise op with derivative computed from input & output.
VarPtr unary_op(const VarPtr& a, const std::function<double(double)>& f,
                const std::function<double(double /*x*/, double /*y*/)>& df) {
  Tensor out = a->value;
  for (auto& x : out.data()) x = f(x);
  auto result = make_op(std::move(out), {a}, nullptr);
  if (result->parents.empty()) return result;
  std::weak_ptr<Variable> wr = result;
  result->backward_fn = [a, df, wr] {
    const auto r = wr.lock();
    Tensor g = r->grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] *= df(a->value[i], r->value[i]);
    }
    a->accumulate_grad(g);
  };
  return result;
}

}  // namespace

VarPtr relu(const VarPtr& a) {
  return unary_op(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

VarPtr tanh_act(const VarPtr& a) {
  return unary_op(
      a, [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; });
}

VarPtr exp_act(const VarPtr& a) {
  return unary_op(
      a, [](double x) { return std::exp(x); }, [](double, double y) { return y; });
}

VarPtr square(const VarPtr& a) {
  return unary_op(
      a, [](double x) { return x * x; }, [](double x, double) { return 2.0 * x; });
}

VarPtr huber(const VarPtr& a, double delta) {
  if (delta <= 0.0) throw std::invalid_argument("huber: delta must be positive");
  return unary_op(
      a,
      [delta](double x) {
        const double ax = std::abs(x);
        return ax <= delta ? 0.5 * x * x : delta * (ax - 0.5 * delta);
      },
      [delta](double x, double) { return std::clamp(x, -delta, delta); });
}

VarPtr sum(const VarPtr& a) {
  auto result = make_op(Tensor::full(1, 1, a->value.sum()), {a}, nullptr);
  if (result->parents.empty()) return result;
  std::weak_ptr<Variable> wr = result;
  result->backward_fn = [a, wr] {
    const double g = wr.lock()->grad[0];
    a->accumulate_grad(Tensor::full(a->value.rows(), a->value.cols(), g));
  };
  return result;
}

VarPtr mean(const VarPtr& a) {
  const auto n = static_cast<double>(a->value.size());
  if (n == 0.0) throw std::invalid_argument("mean of empty variable");
  return mul_scalar(sum(a), 1.0 / n);
}

VarPtr clamp(const VarPtr& a, double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("clamp: lo > hi");
  return unary_op(
      a, [lo, hi](double x) { return std::clamp(x, lo, hi); },
      [lo, hi](double x, double) { return (x > lo && x < hi) ? 1.0 : 0.0; });
}

VarPtr minimum(const VarPtr& a, const VarPtr& b) {
  if (!a->value.same_shape(b->value)) {
    throw std::invalid_argument("minimum: shape mismatch");
  }
  Tensor out = a->value;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::min(out[i], b->value[i]);
  auto result = make_op(std::move(out), {a, b}, nullptr);
  if (result->parents.empty()) return result;
  std::weak_ptr<Variable> wr = result;
  result->backward_fn = [a, b, wr] {
    const auto r = wr.lock();
    Tensor ga = Tensor::zeros(r->grad.rows(), r->grad.cols());
    Tensor gb = ga;
    for (std::size_t i = 0; i < r->grad.size(); ++i) {
      if (a->value[i] <= b->value[i]) {
        ga[i] = r->grad[i];
      } else {
        gb[i] = r->grad[i];
      }
    }
    a->accumulate_grad(ga);
    b->accumulate_grad(gb);
  };
  return result;
}

VarPtr pick(const VarPtr& a, std::size_t r, std::size_t c) {
  if (r >= a->value.rows() || c >= a->value.cols()) {
    throw std::out_of_range("pick: index out of range");
  }
  auto result = make_op(Tensor::full(1, 1, a->value.at(r, c)), {a}, nullptr);
  if (result->parents.empty()) return result;
  std::weak_ptr<Variable> wr = result;
  result->backward_fn = [a, r, c, wr] {
    Tensor g = Tensor::zeros(a->value.rows(), a->value.cols());
    g.at(r, c) = wr.lock()->grad[0];
    a->accumulate_grad(g);
  };
  return result;
}

VarPtr reshape(const VarPtr& a, std::size_t rows, std::size_t cols) {
  auto result = make_op(a->value.reshaped(rows, cols), {a}, nullptr);
  if (result->parents.empty()) return result;
  std::weak_ptr<Variable> wr = result;
  result->backward_fn = [a, wr] {
    const auto r = wr.lock();
    a->accumulate_grad(r->grad.reshaped(a->value.rows(), a->value.cols()));
  };
  return result;
}

VarPtr masked_log_softmax(const VarPtr& logits, const std::vector<std::uint8_t>& mask) {
  const Tensor& z = logits->value;
  if (z.cols() != 1) throw std::invalid_argument("masked_log_softmax: want N x 1");
  if (mask.size() != z.rows()) {
    throw std::invalid_argument("masked_log_softmax: mask size mismatch");
  }
  // log-sum-exp over valid entries, numerically stabilized.
  double zmax = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) {
      zmax = std::max(zmax, z.at(i, 0));
      any = true;
    }
  }
  if (!any) throw std::invalid_argument("masked_log_softmax: all masked");
  double lse = 0.0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) lse += std::exp(z.at(i, 0) - zmax);
  }
  lse = zmax + std::log(lse);

  Tensor out(z.rows(), 1, kMaskedLogProb);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) out.at(i, 0) = z.at(i, 0) - lse;
  }
  auto result = make_op(std::move(out), {logits}, nullptr);
  if (result->parents.empty()) return result;
  std::weak_ptr<Variable> wr = result;
  result->backward_fn = [logits, mask, wr] {
    const auto r = wr.lock();
    // d lp_i / d z_j = delta_ij - softmax_j (valid entries only).
    double gsum = 0.0;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) gsum += r->grad.at(i, 0);
    }
    Tensor g = Tensor::zeros(r->value.rows(), 1);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (!mask[i]) continue;
      const double p = std::exp(r->value.at(i, 0));
      g.at(i, 0) = r->grad.at(i, 0) - p * gsum;
    }
    logits->accumulate_grad(g);
  };
  return result;
}

VarPtr masked_entropy(const VarPtr& log_probs, const std::vector<std::uint8_t>& mask) {
  const Tensor& lp = log_probs->value;
  if (lp.cols() != 1 || mask.size() != lp.rows()) {
    throw std::invalid_argument("masked_entropy: bad shapes");
  }
  double h = 0.0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) h -= std::exp(lp.at(i, 0)) * lp.at(i, 0);
  }
  auto result = make_op(Tensor::full(1, 1, h), {log_probs}, nullptr);
  if (result->parents.empty()) return result;
  std::weak_ptr<Variable> wr = result;
  result->backward_fn = [log_probs, mask, wr] {
    const double g = wr.lock()->grad[0];
    Tensor out = Tensor::zeros(log_probs->value.rows(), 1);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (!mask[i]) continue;
      const double lpi = log_probs->value.at(i, 0);
      out.at(i, 0) = -g * std::exp(lpi) * (lpi + 1.0);
    }
    log_probs->accumulate_grad(out);
  };
  return result;
}

void backward(const VarPtr& root) {
  if (obs::enabled()) {
    static obs::CachedCounter c("nn.backward_calls");
    c.add(1);
  }
  if (root->value.size() != 1) {
    throw std::invalid_argument("backward: root must be scalar, got " +
                                root->value.shape_str());
  }
  // Iterative post-order DFS for the topological order.
  std::vector<VarPtr> topo;
  std::unordered_set<const Variable*> visited;
  std::vector<std::pair<VarPtr, std::size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      const VarPtr next = node->parents[child++];
      if (visited.insert(next.get()).second) stack.emplace_back(next, 0);
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }
  root->accumulate_grad(Tensor::ones(1, 1));
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    if ((*it)->backward_fn && (*it)->has_grad()) (*it)->backward_fn();
  }
}

}  // namespace rlbf::nn
