// Optimizers over parameter Variables. PPO uses Adam with the paper's
// learning rate of 1e-3; plain SGD is kept for tests and ablations.
#pragma once

#include <vector>

#include "nn/autograd.h"

namespace rlbf::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<VarPtr> params);
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients.
  virtual void step() = 0;
  /// Zero every parameter's gradient accumulator.
  void zero_grad();

  const std::vector<VarPtr>& parameters() const { return params_; }

  /// Global L2 gradient-norm clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

 protected:
  std::vector<VarPtr> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<VarPtr> params, double lr);
  void step() override;
  double lr() const { return lr_; }

 private:
  double lr_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<VarPtr> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;
  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace rlbf::nn
