// Neural-network building blocks on top of the autograd layer: Linear,
// and the 3-layer MLP both RLBackfilling networks are built from (the
// kernel policy net applies the MLP to each job vector independently;
// the value net applies it to the flattened observation).
#pragma once

#include <string>
#include <vector>

#include "nn/autograd.h"
#include "util/rng.h"

namespace rlbf::nn {

enum class Activation { None, Relu, Tanh };

/// Apply an activation as an autograd op.
VarPtr activate(const VarPtr& x, Activation act);

/// Fully connected layer: y = x W + b, Xavier-initialized.
class Linear {
 public:
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  /// x: [batch x in] -> [batch x out].
  VarPtr forward(const VarPtr& x) const;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  /// Parameter nodes (W, b) — shared with every forward graph.
  std::vector<VarPtr> parameters() const { return {weight_, bias_}; }
  const VarPtr& weight() const { return weight_; }
  const VarPtr& bias() const { return bias_; }

  /// Deep copy with independent parameters (for worker-thread snapshots).
  Linear clone() const;

 private:
  Linear() = default;
  std::size_t in_ = 0;
  std::size_t out_ = 0;
  VarPtr weight_;  // [in x out]
  VarPtr bias_;    // [1 x out]
};

/// Multi-layer perceptron with a shared hidden activation and linear
/// output. `dims` = {in, h1, ..., out}, so {7, 32, 16, 8, 1} is the
/// paper's 3-hidden-layer kernel network.
class Mlp {
 public:
  Mlp(const std::vector<std::size_t>& dims, Activation hidden_activation,
      util::Rng& rng);

  VarPtr forward(const VarPtr& x) const;
  /// Value-only forward (no graph construction) for rollout collection.
  /// `x` may hold any number of rows — the whole batch goes through one
  /// matrix-matrix pass per layer. Bit-identical per row to a
  /// row-at-a-time pass (row-independent matmul/bias/activation).
  Tensor forward_value(const Tensor& x) const;
  /// forward_value into caller-owned buffers: `out` receives the result,
  /// `scratch` holds intermediate activations. Allocation-free once both
  /// have seen their largest shapes; results are bit-identical to
  /// forward_value.
  void forward_value_into(const Tensor& x, Tensor& out, Tensor& scratch) const;

  std::size_t in_features() const;
  std::size_t out_features() const;
  const std::vector<std::size_t>& dims() const { return dims_; }
  Activation hidden_activation() const { return act_; }

  std::vector<VarPtr> parameters() const;
  std::size_t parameter_count() const;
  /// Multiply the output layer's weights (and bias) by `factor`. Policy
  /// heads use a small factor (e.g. 0.01) so the initial action
  /// distribution is near-uniform — a saturated softmax at init kills
  /// both exploration and the log-prob gradient.
  void scale_output_layer(double factor);
  Mlp clone() const;
  /// Overwrite this MLP's parameter values from another of equal shape.
  void copy_parameters_from(const Mlp& other);

 private:
  std::vector<std::size_t> dims_;
  Activation act_ = Activation::Tanh;
  std::vector<Linear> layers_;
};

}  // namespace rlbf::nn
