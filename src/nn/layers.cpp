#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace rlbf::nn {

VarPtr activate(const VarPtr& x, Activation act) {
  switch (act) {
    case Activation::None: return x;
    case Activation::Relu: return relu(x);
    case Activation::Tanh: return tanh_act(x);
  }
  throw std::logic_error("unknown activation");
}

Linear::Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng)
    : in_(in_features), out_(out_features) {
  if (in_ == 0 || out_ == 0) throw std::invalid_argument("Linear: zero dimension");
  weight_ = make_var(Tensor::xavier(in_, out_, rng), /*requires_grad=*/true);
  bias_ = make_var(Tensor::zeros(1, out_), /*requires_grad=*/true);
}

VarPtr Linear::forward(const VarPtr& x) const { return add(matmul(x, weight_), bias_); }

Linear Linear::clone() const {
  Linear copy;
  copy.in_ = in_;
  copy.out_ = out_;
  copy.weight_ = make_var(weight_->value, true);
  copy.bias_ = make_var(bias_->value, true);
  return copy;
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Activation hidden_activation,
         util::Rng& rng)
    : dims_(dims), act_(hidden_activation) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need at least in/out dims");
  layers_.reserve(dims.size() - 1);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

namespace {

/// One multi-row call that replaces what would otherwise be a per-row
/// pass per job: the ratio of batched_forward to (forward +
/// forward_value) shows how much per-job work the batching collapsed.
void count_forward(std::size_t rows, const char* which) {
  static obs::CachedCounter forward("nn.forward_calls");
  static obs::CachedCounter value("nn.forward_value_calls");
  static obs::CachedCounter batched("nn.batched_forward_calls");
  static obs::CachedCounter batched_rows("nn.batched_forward_rows");
  (which[0] == 'g' ? forward : value).add(1);
  if (rows > 1) {
    batched.add(1);
    batched_rows.add(rows);
  }
}

}  // namespace

VarPtr Mlp::forward(const VarPtr& x) const {
  if (obs::enabled()) count_forward(x->value.rows(), "graph");
  VarPtr h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].forward(h);
    if (i + 1 < layers_.size()) h = activate(h, act_);
  }
  return h;
}

Tensor Mlp::forward_value(const Tensor& x) const {
  Tensor out, scratch;
  forward_value_into(x, out, scratch);
  return out;
}

void Mlp::forward_value_into(const Tensor& x, Tensor& out, Tensor& scratch) const {
  if (obs::enabled()) count_forward(x.rows(), "value");
  // Ping-pong between `out` and `scratch` so a caller-owned pair of
  // buffers makes the whole pass allocation-free once warmed up. The
  // arithmetic (matmul, row-broadcast bias, elementwise activation) is
  // identical to the historical per-call-allocating loop, so results
  // are bit-for-bit unchanged.
  const Tensor* h = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // Layers alternate targets; the final layer must land in `out`.
    const bool last = i + 1 == layers_.size();
    const bool to_out = last || (layers_.size() - 1 - i) % 2 == 0;
    Tensor& dst = to_out ? out : scratch;
    Tensor::matmul_into(*h, layers_[i].weight()->value, dst);
    const Tensor& b = layers_[i].bias()->value;
    for (std::size_t r = 0; r < dst.rows(); ++r) {
      for (std::size_t c = 0; c < dst.cols(); ++c) dst.at(r, c) += b.at(0, c);
    }
    if (!last) {
      for (auto& v : dst.data()) {
        v = (act_ == Activation::Relu) ? (v > 0.0 ? v : 0.0)
            : (act_ == Activation::Tanh) ? std::tanh(v)
                                         : v;
      }
    }
    h = &dst;
  }
}

std::size_t Mlp::in_features() const { return dims_.front(); }
std::size_t Mlp::out_features() const { return dims_.back(); }

std::vector<VarPtr> Mlp::parameters() const {
  std::vector<VarPtr> params;
  params.reserve(layers_.size() * 2);
  for (const auto& l : layers_) {
    for (auto& p : l.parameters()) params.push_back(std::move(p));
  }
  return params;
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : parameters()) n += p->value.size();
  return n;
}

void Mlp::scale_output_layer(double factor) {
  const Linear& last = layers_.back();
  last.weight()->value.mul_(factor);
  last.bias()->value.mul_(factor);
}

Mlp Mlp::clone() const {
  Mlp copy = *this;
  copy.layers_.clear();
  for (const auto& l : layers_) copy.layers_.push_back(l.clone());
  return copy;
}

void Mlp::copy_parameters_from(const Mlp& other) {
  const auto mine = parameters();
  const auto theirs = other.parameters();
  if (mine.size() != theirs.size()) {
    throw std::invalid_argument("copy_parameters_from: layer count mismatch");
  }
  for (std::size_t i = 0; i < mine.size(); ++i) {
    if (!mine[i]->value.same_shape(theirs[i]->value)) {
      throw std::invalid_argument("copy_parameters_from: shape mismatch");
    }
    mine[i]->value = theirs[i]->value;
  }
}

}  // namespace rlbf::nn
