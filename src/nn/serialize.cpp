#include "nn/serialize.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rlbf::nn {

namespace {

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::None: return "none";
    case Activation::Relu: return "relu";
    case Activation::Tanh: return "tanh";
  }
  return "?";
}

Activation activation_from(const std::string& s) {
  if (s == "none") return Activation::None;
  if (s == "relu") return Activation::Relu;
  if (s == "tanh") return Activation::Tanh;
  throw std::runtime_error("model: unknown activation '" + s + "'");
}

void write_tensor(std::ostream& out, const Tensor& t) {
  out << "tensor " << t.rows() << ' ' << t.cols() << '\n';
  out << std::hexfloat;
  for (std::size_t r = 0; r < t.rows(); ++r) {
    for (std::size_t c = 0; c < t.cols(); ++c) {
      if (c) out << ' ';
      out << t.at(r, c);
    }
    out << '\n';
  }
  out << std::defaultfloat;
}

Tensor read_tensor(std::istream& in) {
  std::string tag;
  std::size_t rows = 0, cols = 0;
  if (!(in >> tag >> rows >> cols) || tag != "tensor") {
    throw std::runtime_error("model: expected tensor header");
  }
  Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    // operator>> does not parse hexfloat portably; read a token and
    // strtod it (strtod handles 0x1.8p+1 style).
    std::string tok;
    if (!(in >> tok)) throw std::runtime_error("model: truncated tensor");
    t[i] = std::strtod(tok.c_str(), nullptr);
  }
  return t;
}

}  // namespace

const Mlp* ModelBundle::find(const std::string& name) const {
  for (const auto& [n, mlp] : mlps) {
    if (n == name) return &mlp;
  }
  return nullptr;
}

void save_model(std::ostream& out, const ModelBundle& bundle) {
  out << "rlbf-model v1\n";
  for (const auto& [k, v] : bundle.meta) out << "meta " << k << ' ' << v << '\n';
  for (const auto& [name, mlp] : bundle.mlps) {
    out << "mlp " << name << ' ' << mlp.dims().size();
    for (auto d : mlp.dims()) out << ' ' << d;
    out << ' ' << activation_name(mlp.hidden_activation()) << '\n';
    for (const auto& p : mlp.parameters()) write_tensor(out, p->value);
  }
}

bool save_model_file(const std::string& path, const ModelBundle& bundle) {
  std::ofstream out(path);
  if (!out) return false;
  save_model(out, bundle);
  return static_cast<bool>(out);
}

ModelBundle load_model(std::istream& in) {
  std::string magic, version;
  if (!(in >> magic >> version) || magic != "rlbf-model" || version != "v1") {
    throw std::runtime_error("model: bad magic/version");
  }
  ModelBundle bundle;
  std::string tag;
  while (in >> tag) {
    if (tag == "meta") {
      std::string key, value;
      in >> key;
      std::getline(in, value);
      const auto b = value.find_first_not_of(' ');
      bundle.meta[key] = (b == std::string::npos) ? std::string{} : value.substr(b);
    } else if (tag == "mlp") {
      std::string name;
      std::size_t ndims = 0;
      if (!(in >> name >> ndims) || ndims < 2) {
        throw std::runtime_error("model: bad mlp header");
      }
      std::vector<std::size_t> dims(ndims);
      for (auto& d : dims) {
        if (!(in >> d)) throw std::runtime_error("model: truncated dims");
      }
      std::string act_name;
      in >> act_name;
      util::Rng rng(0);  // values are overwritten below
      Mlp mlp(dims, activation_from(act_name), rng);
      for (const auto& p : mlp.parameters()) {
        const Tensor t = read_tensor(in);
        if (!t.same_shape(p->value)) {
          throw std::runtime_error("model: tensor shape mismatch for " + name);
        }
        p->value = t;
      }
      bundle.mlps.emplace_back(name, std::move(mlp));
    } else {
      throw std::runtime_error("model: unknown tag '" + tag + "'");
    }
  }
  return bundle;
}

ModelBundle load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  return load_model(in);
}

}  // namespace rlbf::nn
