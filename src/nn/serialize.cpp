#include "nn/serialize.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rlbf::nn {

namespace {

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::None: return "none";
    case Activation::Relu: return "relu";
    case Activation::Tanh: return "tanh";
  }
  return "?";
}

/// Whitespace-delimited token reader that tracks the current line so
/// every parse error can say WHERE a model file is corrupt, not just
/// that it is. Truncation, junk tokens, and malformed numbers all throw
/// through fail() — a load either yields a complete bundle or nothing.
class TokenReader {
 public:
  explicit TokenReader(std::istream& in) : in_(in) {}

  std::size_t line() const { return line_; }

  /// Next token; false at a clean end of input. The terminating
  /// whitespace is left unconsumed so a following rest_of_line() reads
  /// THIS line's remainder — "meta key\n" yields an empty value, not the
  /// next line swallowed as one.
  bool next(std::string& token) {
    token.clear();
    int c = in_.get();
    while (c != std::istream::traits_type::eof() &&
           std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') ++line_;
      c = in_.get();
    }
    if (c == std::istream::traits_type::eof()) return false;
    token_line_ = line_;  // errors report where the token STARTED
    while (c != std::istream::traits_type::eof() &&
           !std::isspace(static_cast<unsigned char>(c))) {
      token.push_back(static_cast<char>(c));
      c = in_.get();
    }
    if (c != std::istream::traits_type::eof()) in_.unget();
    return true;
  }

  /// Next token, or throw `what` mentioning the line (truncation).
  std::string require(const char* what) {
    std::string token;
    if (!next(token)) {
      fail(std::string("unexpected end of file, expected ") + what);
    }
    return token;
  }

  /// Rest of the current line, leading spaces trimmed (meta values).
  std::string rest_of_line() {
    std::string value;
    std::getline(in_, value);
    ++line_;
    const auto b = value.find_first_not_of(" \t");
    return (b == std::string::npos) ? std::string{} : value.substr(b);
  }

  std::size_t require_size(const char* what) {
    const std::string token = require(what);
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    // strtoull "accepts" a leading '-' by wrapping; require a digit.
    if (token.empty() || !std::isdigit(static_cast<unsigned char>(token[0])) ||
        end == token.c_str() || *end != '\0' || errno == ERANGE) {
      fail(std::string("bad ") + what + " '" + token + "'");
    }
    return static_cast<std::size_t>(v);
  }

  double require_double(const char* what) {
    const std::string token = require(what);
    // strtod handles the hexfloat (0x1.8p+1) values save_model writes,
    // which operator>> does not parse portably. The full token must
    // convert: a half-eaten value means corruption, not a number.
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(token.c_str(), &end);
    // Overflow ("1e999999") is corruption; underflow to a subnormal also
    // sets ERANGE but is a legitimate tiny weight, so only reject +-inf.
    const bool overflow =
        errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL);
    if (end == token.c_str() || *end != '\0' || overflow) {
      fail(std::string("bad ") + what + " '" + token + "'");
    }
    return v;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("model: " + message + " (line " +
                             std::to_string(token_line_ + 1) + ")");
  }

 private:
  std::istream& in_;
  std::size_t line_ = 0;        // 0-based cursor
  std::size_t token_line_ = 0;  // line of the last token; fail() is 1-based
};

Activation activation_from(TokenReader& reader, const std::string& s) {
  if (s == "none") return Activation::None;
  if (s == "relu") return Activation::Relu;
  if (s == "tanh") return Activation::Tanh;
  reader.fail("unknown activation '" + s + "'");
}

void write_tensor(std::ostream& out, const Tensor& t) {
  out << "tensor " << t.rows() << ' ' << t.cols() << '\n';
  out << std::hexfloat;
  for (std::size_t r = 0; r < t.rows(); ++r) {
    for (std::size_t c = 0; c < t.cols(); ++c) {
      if (c) out << ' ';
      out << t.at(r, c);
    }
    out << '\n';
  }
  out << std::defaultfloat;
}

Tensor read_tensor(TokenReader& reader) {
  const std::string tag = reader.require("tensor header");
  if (tag != "tensor") reader.fail("expected tensor header, got '" + tag + "'");
  const std::size_t rows = reader.require_size("tensor rows");
  const std::size_t cols = reader.require_size("tensor cols");
  Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = reader.require_double("tensor value");
  }
  return t;
}

}  // namespace

const Mlp* ModelBundle::find(const std::string& name) const {
  for (const auto& [n, mlp] : mlps) {
    if (n == name) return &mlp;
  }
  return nullptr;
}

void save_model(std::ostream& out, const ModelBundle& bundle) {
  out << "rlbf-model v1\n";
  for (const auto& [k, v] : bundle.meta) out << "meta " << k << ' ' << v << '\n';
  for (const auto& [name, mlp] : bundle.mlps) {
    out << "mlp " << name << ' ' << mlp.dims().size();
    for (auto d : mlp.dims()) out << ' ' << d;
    out << ' ' << activation_name(mlp.hidden_activation()) << '\n';
    for (const auto& p : mlp.parameters()) write_tensor(out, p->value);
  }
}

bool save_model_file(const std::string& path, const ModelBundle& bundle) {
  std::ofstream out(path);
  if (!out) return false;
  save_model(out, bundle);
  return static_cast<bool>(out);
}

ModelBundle load_model(std::istream& in) {
  TokenReader reader(in);
  std::string magic, version;
  if (!reader.next(magic) || magic != "rlbf-model" || !reader.next(version) ||
      version != "v1") {
    reader.fail("bad magic/version (expected 'rlbf-model v1')");
  }
  ModelBundle bundle;
  std::string tag;
  while (reader.next(tag)) {
    if (tag == "meta") {
      const std::string key = reader.require("meta key");
      bundle.meta[key] = reader.rest_of_line();
    } else if (tag == "mlp") {
      const std::string name = reader.require("mlp name");
      const std::size_t ndims = reader.require_size("mlp dim count");
      if (ndims < 2) reader.fail("mlp '" + name + "' needs >= 2 dims");
      std::vector<std::size_t> dims(ndims);
      for (auto& d : dims) d = reader.require_size("mlp dim");
      util::Rng rng(0);  // values are overwritten below
      Mlp mlp(dims, activation_from(reader, reader.require("activation")), rng);
      for (const auto& p : mlp.parameters()) {
        const Tensor t = read_tensor(reader);
        if (!t.same_shape(p->value)) {
          reader.fail("tensor shape mismatch for mlp '" + name + "'");
        }
        p->value = t;
      }
      bundle.mlps.emplace_back(name, std::move(mlp));
    } else {
      reader.fail("unknown tag '" + tag + "'");
    }
  }
  return bundle;
}

ModelBundle load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  try {
    return load_model(in);
  } catch (const std::exception& e) {
    // Every corruption error names the offending file, not just the line.
    throw std::runtime_error(std::string(e.what()) + " in " + path);
  }
}

std::map<std::string, std::string> load_model_meta(std::istream& in) {
  TokenReader reader(in);
  std::string magic, version;
  if (!reader.next(magic) || magic != "rlbf-model" || !reader.next(version) ||
      version != "v1") {
    reader.fail("bad magic/version (expected 'rlbf-model v1')");
  }
  std::map<std::string, std::string> meta;
  std::string tag;
  while (reader.next(tag)) {
    if (tag == "meta") {
      const std::string key = reader.require("meta key");
      meta[key] = reader.rest_of_line();
    } else if (tag == "mlp") {
      break;  // meta precedes network data; nothing more to read
    } else {
      reader.fail("unknown tag '" + tag + "'");
    }
  }
  return meta;
}

std::map<std::string, std::string> load_model_meta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  try {
    return load_model_meta(in);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + " in " + path);
  }
}

}  // namespace rlbf::nn
