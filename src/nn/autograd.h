// Reverse-mode automatic differentiation over Tensor.
//
// Computation graphs are built dynamically: every op returns a new
// Variable holding its value, its parents, and a closure that scatters
// the upstream gradient to the parents. backward() topologically sorts
// the graph from a scalar root and runs the closures in reverse.
//
// This is the substrate standing in for PyTorch (DESIGN.md §3): the op
// set is exactly what PPO with a masked categorical policy needs, and
// every op's gradient is finite-difference-checked in tests/nn/.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace rlbf::nn {

class Variable;
using VarPtr = std::shared_ptr<Variable>;

class Variable {
 public:
  explicit Variable(Tensor value, bool requires_grad = false)
      : value(std::move(value)), requires_grad(requires_grad) {}

  Tensor value;
  /// Lazily sized on first accumulation; survives across graphs for
  /// parameter nodes (zeroed by the optimizer).
  Tensor grad;
  bool requires_grad = false;

  std::vector<VarPtr> parents;
  /// Reads this->grad, accumulates into parents' grads. Null for leaves.
  std::function<void()> backward_fn;

  /// Accumulate g into grad (allocating on first use).
  void accumulate_grad(const Tensor& g);
  bool has_grad() const { return grad.size() == value.size() && grad.size() > 0; }
  void zero_grad();
};

/// Leaf node; set requires_grad for parameters.
VarPtr make_var(Tensor value, bool requires_grad = false);
/// Non-differentiable constant.
VarPtr constant(Tensor value);
VarPtr scalar(double v);

/// Elementwise a + b. b may also be 1 x cols (row broadcast over a's
/// rows, the Linear bias case) or 1 x 1 (scalar broadcast).
VarPtr add(const VarPtr& a, const VarPtr& b);
/// a - b (same broadcast rules via add/neg).
VarPtr sub(const VarPtr& a, const VarPtr& b);
/// Elementwise product, same shape only.
VarPtr mul(const VarPtr& a, const VarPtr& b);
VarPtr mul_scalar(const VarPtr& a, double s);
VarPtr neg(const VarPtr& a);
VarPtr matmul(const VarPtr& a, const VarPtr& b);

VarPtr relu(const VarPtr& a);
VarPtr tanh_act(const VarPtr& a);
VarPtr exp_act(const VarPtr& a);
VarPtr square(const VarPtr& a);
/// Elementwise Huber loss of a residual: 0.5 x^2 inside |x| <= delta,
/// delta(|x| - delta/2) outside. Gradient clamp(x, -delta, delta) — the
/// outlier-robust regression loss DQN fits Q targets with.
VarPtr huber(const VarPtr& a, double delta);

/// Reductions to 1 x 1.
VarPtr sum(const VarPtr& a);
VarPtr mean(const VarPtr& a);

/// Elementwise clamp; gradient passes only strictly inside (lo, hi).
VarPtr clamp(const VarPtr& a, double lo, double hi);
/// Elementwise min; gradient follows the smaller input (ties -> a).
VarPtr minimum(const VarPtr& a, const VarPtr& b);

/// Select one element as a 1 x 1 variable.
VarPtr pick(const VarPtr& a, std::size_t r, std::size_t c);
/// Copy-reshape (gradient reshapes back).
VarPtr reshape(const VarPtr& a, std::size_t rows, std::size_t cols);

/// Value used for masked-out logits' log-probabilities.
inline constexpr double kMaskedLogProb = -1e30;

/// Masked log-softmax over a column vector (N x 1). Entries with
/// mask[i] == 0 are excluded from the normalization, produce
/// kMaskedLogProb, and receive zero gradient. At least one entry must
/// be valid.
VarPtr masked_log_softmax(const VarPtr& logits, const std::vector<std::uint8_t>& mask);

/// Entropy of the masked categorical given its log-probabilities:
/// -sum_valid exp(lp) * lp, as a 1 x 1 variable.
VarPtr masked_entropy(const VarPtr& log_probs, const std::vector<std::uint8_t>& mask);

/// Backpropagate from a scalar (1 x 1) root with seed gradient 1.
void backward(const VarPtr& root);

}  // namespace rlbf::nn
