#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rlbf::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor::Tensor(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("Tensor: ragged init list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) { return Tensor(rows, cols, 0.0); }
Tensor Tensor::ones(std::size_t rows, std::size_t cols) { return Tensor(rows, cols, 1.0); }
Tensor Tensor::full(std::size_t rows, std::size_t cols, double v) {
  return Tensor(rows, cols, v);
}

Tensor Tensor::randn(std::size_t rows, std::size_t cols, util::Rng& rng, double stddev) {
  Tensor t(rows, cols);
  for (auto& x : t.data_) x = rng.normal(0.0, stddev);
  return t;
}

Tensor Tensor::xavier(std::size_t fan_in, std::size_t fan_out, util::Rng& rng) {
  Tensor t(fan_in, fan_out);
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (auto& x : t.data_) x = rng.uniform(-a, a);
  return t;
}

double Tensor::item() const {
  if (size() != 1) throw std::logic_error("Tensor::item on non-scalar " + shape_str());
  return data_[0];
}

void Tensor::matmul_into(const Tensor& a, const Tensor& b, Tensor& out, bool trans_a,
                         bool trans_b, bool accumulate) {
  const std::size_t m = trans_a ? a.cols_ : a.rows_;
  const std::size_t k = trans_a ? a.rows_ : a.cols_;
  const std::size_t k2 = trans_b ? b.cols_ : b.rows_;
  const std::size_t n = trans_b ? b.rows_ : b.cols_;
  if (k != k2) {
    throw std::invalid_argument("matmul: inner dims " + a.shape_str() + " x " +
                                b.shape_str());
  }
  if (out.rows_ != m || out.cols_ != n) {
    if (accumulate) throw std::invalid_argument("matmul: bad accumulate shape");
    // Reshape in place: vector::assign reuses existing capacity, so a
    // caller cycling one scratch tensor through different layer shapes
    // stops allocating once the largest shape has been seen.
    out.rows_ = m;
    out.cols_ = n;
    out.data_.assign(m * n, 0.0);
  } else if (!accumulate) {
    out.fill(0.0);
  }
  // i-k-j ordering keeps the inner loop streaming over contiguous rows
  // of B and OUT for the common non-transposed case.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = trans_a ? a.at(kk, i) : a.at(i, kk);
      if (aik == 0.0) continue;
      if (!trans_b) {
        const double* brow = b.data_.data() + kk * b.cols_;
        double* orow = out.data_.data() + i * out.cols_;
        for (std::size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
      } else {
        double* orow = out.data_.data() + i * out.cols_;
        for (std::size_t j = 0; j < n; ++j) orow[j] += aik * b.at(j, kk);
      }
    }
  }
}

Tensor Tensor::matmul(const Tensor& other) const {
  Tensor out;
  matmul_into(*this, other, out);
  return out;
}

Tensor Tensor::transpose() const {
  Tensor t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + a.shape_str() +
                                " vs " + b.shape_str());
  }
}
}  // namespace

Tensor& Tensor::add_(const Tensor& other) {
  check_same_shape(*this, other, "add_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  check_same_shape(*this, other, "sub_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Tensor& Tensor::hadamard_(const Tensor& other) {
  check_same_shape(*this, other, "hadamard_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

void Tensor::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

double Tensor::sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

double Tensor::mean() const {
  if (data_.empty()) return 0.0;
  return sum() / static_cast<double>(data_.size());
}

double Tensor::min() const {
  if (data_.empty()) throw std::logic_error("Tensor::min on empty");
  return *std::min_element(data_.begin(), data_.end());
}

double Tensor::max() const {
  if (data_.empty()) throw std::logic_error("Tensor::max on empty");
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

Tensor Tensor::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Tensor::row");
  Tensor t(1, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_),
            t.data_.begin());
  return t;
}

Tensor Tensor::reshaped(std::size_t rows, std::size_t cols) const {
  if (rows * cols != size()) {
    throw std::invalid_argument("reshape: size mismatch " + shape_str());
  }
  Tensor t = *this;
  t.rows_ = rows;
  t.cols_ = cols;
  return t;
}

double Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[' << rows_ << 'x' << cols_ << ']';
  return os.str();
}

}  // namespace rlbf::nn
