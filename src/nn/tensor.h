// Dense row-major 2-D tensor of doubles — the numeric substrate for the
// autograd library. Networks in this project are tiny (a kernel MLP that
// scores one job vector at a time), so clarity and testability win over
// raw throughput; the matmul kernel still uses a cache-friendly i-k-j
// loop so PPO updates stay fast enough to train in seconds.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rlbf::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// 2-D initializer: Tensor{{1,2},{3,4}}. All rows must be equal length.
  Tensor(std::initializer_list<std::initializer_list<double>> rows);

  static Tensor zeros(std::size_t rows, std::size_t cols);
  static Tensor ones(std::size_t rows, std::size_t cols);
  static Tensor full(std::size_t rows, std::size_t cols, double v);
  /// i.i.d. N(0, stddev^2).
  static Tensor randn(std::size_t rows, std::size_t cols, util::Rng& rng,
                      double stddev = 1.0);
  /// Xavier/Glorot uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
  static Tensor xavier(std::size_t fan_in, std::size_t fan_out, util::Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool same_shape(const Tensor& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// The single element of a 1x1 tensor; throws otherwise.
  double item() const;

  // ---- value-level math (no autograd; used by op backward passes) ----

  /// out (+)= op(A, B) with optional transposes; shapes must agree.
  static void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                          bool trans_a = false, bool trans_b = false,
                          bool accumulate = false);
  Tensor matmul(const Tensor& other) const;
  Tensor transpose() const;

  Tensor& add_(const Tensor& other);       // elementwise +=
  Tensor& sub_(const Tensor& other);       // elementwise -=
  Tensor& mul_(double s);                  // scale
  Tensor& hadamard_(const Tensor& other);  // elementwise *=
  void fill(double v);

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// sqrt(sum of squares).
  double norm() const;

  /// Row `r` as a new 1 x cols tensor.
  Tensor row(std::size_t r) const;
  /// Copy with new shape (rows*cols must match).
  Tensor reshaped(std::size_t rows, std::size_t cols) const;

  bool operator==(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  /// Max |a - b| over elements; throws on shape mismatch.
  static double max_abs_diff(const Tensor& a, const Tensor& b);

  std::string shape_str() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace rlbf::nn
