// Runtime-estimate sources for backfilling, covering every configuration
// the paper evaluates:
//
//   RequestTimeEstimator  — the user-submitted wall time (EASY's default)
//   ActualRuntimeEstimator— the oracle / "ideal prediction" (EASY-AR)
//   NoisyEstimator        — actual runtime inflated by a random +x% error
//                           (Figure 1's +5% ... +100% sweep)
//   TsafrirEstimator      — system-generated predictions (Tsafrir et al.,
//                           TPDS'07, the paper's related-work [25]): the
//                           average runtime of the same user's two most
//                           recent *completed* jobs, falling back to the
//                           request time while no history exists.
//
// NoisyEstimator draws its per-job error deterministically from
// (seed, job id), so an estimate is stable across repeated queries within
// a simulation and across baseline comparisons at a fixed seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "sim/event_sim.h"

namespace rlbf::sched {

class RequestTimeEstimator final : public sim::RuntimeEstimator {
 public:
  std::int64_t estimate(const swf::Job& job) const override;
  std::string name() const override { return "RequestTime"; }
};

class ActualRuntimeEstimator final : public sim::RuntimeEstimator {
 public:
  std::int64_t estimate(const swf::Job& job) const override;
  std::string name() const override { return "ActualRuntime"; }
};

class NoisyEstimator final : public sim::RuntimeEstimator {
 public:
  /// estimate = AR * (1 + U(0, noise_fraction)); noise_fraction 0.2
  /// reproduces the paper's "+20%" case. Estimates never exceed the
  /// user request time when one exists (a predictor would clamp there,
  /// since jobs are killed at the request time).
  NoisyEstimator(double noise_fraction, std::uint64_t seed);

  std::int64_t estimate(const swf::Job& job) const override;
  std::string name() const override;

  double noise_fraction() const { return noise_fraction_; }

 private:
  double noise_fraction_;
  std::uint64_t seed_;
};

class TsafrirEstimator final : public sim::RuntimeEstimator {
 public:
  /// Precomputes every job's prediction from the trace in submit order:
  /// predict(j) = mean(actual runtime of the user's previous <= 2 jobs),
  /// clamped to [1, request time]; jobs with no same-user history use
  /// the request time. (Approximation of the original online scheme: we
  /// use submit order rather than completion order, which keeps the
  /// estimator deterministic and schedule-independent. Predictions are
  /// keyed by job id.)
  explicit TsafrirEstimator(const swf::Trace& trace);

  std::int64_t estimate(const swf::Job& job) const override;
  std::string name() const override { return "Tsafrir"; }

  /// Fraction of jobs predicted from history (vs request-time fallback).
  double coverage() const { return coverage_; }

 private:
  std::unordered_map<std::int64_t, std::int64_t> predictions_;
  double coverage_ = 0.0;
};

}  // namespace rlbf::sched
