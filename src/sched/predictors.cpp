#include "sched/predictors.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace rlbf::sched {

namespace {

/// Clamp a raw prediction to the deployable range [1, request time]: a
/// system predictor never schedules past the kill limit.
std::int64_t clamp_prediction(std::int64_t raw, const swf::Job& job) {
  raw = std::max<std::int64_t>(raw, 1);
  if (job.requested_time > 0) raw = std::min(raw, job.requested_time);
  return raw;
}

}  // namespace

RecentKEstimator::RecentKEstimator(const swf::Trace& trace, std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("RecentKEstimator: k must be >= 1");
  std::unordered_map<std::int64_t, std::deque<std::int64_t>> history;
  std::size_t predicted = 0;
  for (const auto& job : trace.jobs()) {
    auto& h = history[job.user_id];
    std::int64_t prediction;
    if (!h.empty()) {
      double sum = 0.0;
      for (std::int64_t r : h) sum += static_cast<double>(r);
      prediction = static_cast<std::int64_t>(
          std::llround(sum / static_cast<double>(h.size())));
      ++predicted;
    } else {
      prediction = job.request_time();
    }
    predictions_.emplace(job.id, clamp_prediction(prediction, job));
    h.push_front(std::max<std::int64_t>(job.run_time, 1));
    if (h.size() > k_) h.pop_back();
  }
  coverage_ = trace.empty()
                  ? 0.0
                  : static_cast<double>(predicted) / static_cast<double>(trace.size());
}

std::int64_t RecentKEstimator::estimate(const swf::Job& job) const {
  const auto it = predictions_.find(job.id);
  if (it != predictions_.end()) return it->second;
  return std::max<std::int64_t>(job.request_time(), 1);
}

std::string RecentKEstimator::name() const {
  std::ostringstream os;
  os << "Recent" << k_;
  return os.str();
}

ClassAverageEstimator::ClassAverageEstimator(const swf::Trace& trace) {
  struct RunningMean {
    double sum = 0.0;
    std::size_t n = 0;
    bool any() const { return n > 0; }
    std::int64_t mean() const {
      return static_cast<std::int64_t>(std::llround(sum / static_cast<double>(n)));
    }
  };
  // Class key packs (user, executable, log2 proc bucket) into one word.
  // user/executable ids in SWF traces are small (< 2^24); the unknown
  // sentinel -1 maps to its own bucket via the +1 shift.
  const auto class_key = [](const swf::Job& job) -> std::int64_t {
    const std::int64_t user = job.user_id + 1;
    const std::int64_t exe = job.executable + 1;
    std::int64_t bucket = 0;
    for (std::int64_t p = job.procs(); p > 1; p >>= 1) ++bucket;
    return (user << 32) | (exe << 8) | bucket;
  };

  std::unordered_map<std::int64_t, RunningMean> by_class;
  std::unordered_map<std::int64_t, RunningMean> by_user;
  std::size_t class_hits = 0;
  for (const auto& job : trace.jobs()) {
    RunningMean& cls = by_class[class_key(job)];
    RunningMean& usr = by_user[job.user_id];
    std::int64_t prediction;
    if (cls.any()) {
      prediction = cls.mean();
      ++class_hits;
    } else if (usr.any()) {
      prediction = usr.mean();
    } else {
      prediction = job.request_time();
    }
    predictions_.emplace(job.id, clamp_prediction(prediction, job));
    const auto run = static_cast<double>(std::max<std::int64_t>(job.run_time, 1));
    cls.sum += run;
    ++cls.n;
    usr.sum += run;
    ++usr.n;
  }
  class_coverage_ = trace.empty() ? 0.0
                                  : static_cast<double>(class_hits) /
                                        static_cast<double>(trace.size());
}

std::int64_t ClassAverageEstimator::estimate(const swf::Job& job) const {
  const auto it = predictions_.find(job.id);
  if (it != predictions_.end()) return it->second;
  return std::max<std::int64_t>(job.request_time(), 1);
}

BlendEstimator::BlendEstimator(const sim::RuntimeEstimator& inner, double alpha)
    : inner_(inner), alpha_(alpha) {
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("BlendEstimator: alpha must be in [0, 1]");
  }
}

std::int64_t BlendEstimator::estimate(const swf::Job& job) const {
  const auto inner = static_cast<double>(inner_.estimate(job));
  const auto rt = static_cast<double>(std::max<std::int64_t>(job.request_time(), 1));
  const auto blended =
      static_cast<std::int64_t>(std::llround(alpha_ * inner + (1.0 - alpha_) * rt));
  return clamp_prediction(blended, job);
}

std::string BlendEstimator::name() const {
  std::ostringstream os;
  os << "Blend(" << inner_.name() << "," << alpha_ << ")";
  return os.str();
}

UnderNoisyEstimator::UnderNoisyEstimator(double noise_fraction, std::uint64_t seed)
    : noise_fraction_(noise_fraction), seed_(seed) {
  if (noise_fraction < 0.0 || noise_fraction >= 1.0) {
    throw std::invalid_argument(
        "UnderNoisyEstimator: noise fraction must be in [0, 1)");
  }
}

std::int64_t UnderNoisyEstimator::estimate(const swf::Job& job) const {
  // Same deterministic per-job stream construction as NoisyEstimator,
  // offset so the over- and under-prediction errors of one job are
  // independent draws.
  util::Rng rng(seed_ ^
                (0xbf58476d1ce4e5b9ull * static_cast<std::uint64_t>(job.id + 1)));
  const double factor = 1.0 - rng.uniform(0.0, noise_fraction_);
  const double ar = static_cast<double>(std::max<std::int64_t>(job.run_time, 1));
  const auto est = static_cast<std::int64_t>(std::llround(ar * factor));
  return std::max<std::int64_t>(est, 1);
}

std::string UnderNoisyEstimator::name() const {
  std::ostringstream os;
  os << "Noisy-" << static_cast<int>(std::lround(noise_fraction_ * 100.0)) << "%";
  return os.str();
}

double mean_relative_error(const sim::RuntimeEstimator& estimator,
                           const swf::Trace& trace) {
  if (trace.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& job : trace.jobs()) {
    const auto ar = static_cast<double>(std::max<std::int64_t>(job.run_time, 1));
    const auto est = static_cast<double>(estimator.estimate(job));
    sum += std::abs(est - ar) / ar;
  }
  return sum / static_cast<double>(trace.size());
}

}  // namespace rlbf::sched
