#include "sched/policies.h"

#include <cmath>
#include <stdexcept>

namespace rlbf::sched {

namespace {
/// Request time with a floor of 1 s, so ratios and logs are defined.
double safe_rt(const swf::Job& job) {
  return static_cast<double>(std::max<std::int64_t>(job.request_time(), 1));
}
}  // namespace

double FcfsPolicy::score(const swf::Job& job, std::int64_t /*now*/) const {
  return static_cast<double>(job.submit_time);
}

double SjfPolicy::score(const swf::Job& job, std::int64_t /*now*/) const {
  return safe_rt(job);
}

double Wfp3Policy::score(const swf::Job& job, std::int64_t now) const {
  const double wt = static_cast<double>(std::max<std::int64_t>(now - job.submit_time, 0));
  const double ratio = wt / safe_rt(job);
  return -(ratio * ratio * ratio) * static_cast<double>(job.procs());
}

double F1Policy::score(const swf::Job& job, std::int64_t /*now*/) const {
  // log10(st) is ill-defined for the trace's first job (st == 0); the
  // published formula assumes epoch-style submit stamps, so clamp to 1.
  const double st = static_cast<double>(std::max<std::int64_t>(job.submit_time, 1));
  return std::log10(safe_rt(job)) * static_cast<double>(job.procs()) +
         870.0 * std::log10(st);
}

std::unique_ptr<sim::PriorityPolicy> make_policy(const std::string& name) {
  if (name == "FCFS") return std::make_unique<FcfsPolicy>();
  if (name == "SJF") return std::make_unique<SjfPolicy>();
  if (name == "WFP3") return std::make_unique<Wfp3Policy>();
  if (name == "F1") return std::make_unique<F1Policy>();
  throw std::invalid_argument("unknown policy: " + name);
}

std::vector<std::string> all_policy_names() { return {"FCFS", "SJF", "WFP3", "F1"}; }

}  // namespace rlbf::sched
