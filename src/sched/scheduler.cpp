#include "sched/scheduler.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rlbf::sched {

ScheduleOutcome run_schedule(const swf::Trace& trace, const sim::PriorityPolicy& policy,
                             const sim::RuntimeEstimator& estimator,
                             sim::BackfillChooser* chooser,
                             const sim::SimulationOptions& options) {
  ScheduleOutcome out;
  out.results = sim::simulate(trace, policy, estimator, chooser, options);
  out.metrics = sim::compute_metrics(out.results, trace.machine_procs());
  return out;
}

std::string SchedulerSpec::label() const {
  std::ostringstream os;
  os << policy;
  if (uses_agent()) {
    os << "+RLBF";
    switch (estimate) {
      case EstimateKind::RequestTime: break;
      case EstimateKind::ActualRuntime: os << "-AR"; break;
      case EstimateKind::Noisy:
        os << "+" << static_cast<int>(std::lround(noise_fraction * 100.0)) << "%";
        break;
    }
    return os.str();
  }
  switch (backfill) {
    case BackfillKind::None: os << "+NOBF"; break;
    case BackfillKind::Easy: os << "+EASY"; break;
    case BackfillKind::EasySjf: os << "+EASY-SJF"; break;
    case BackfillKind::EasyBestFit: os << "+EASY-BF"; break;
    case BackfillKind::EasyWorstFit: os << "+EASY-WF"; break;
    case BackfillKind::Conservative: os << "+CONS"; break;
    case BackfillKind::Slack: os << "+SLACK"; break;
  }
  switch (estimate) {
    case EstimateKind::RequestTime: break;  // the default EASY reading
    case EstimateKind::ActualRuntime: os << "-AR"; break;
    case EstimateKind::Noisy:
      os << "+" << static_cast<int>(std::lround(noise_fraction * 100.0)) << "%";
      break;
  }
  return os.str();
}

namespace {

std::unique_ptr<sim::RuntimeEstimator> make_estimator(const SchedulerSpec& spec) {
  switch (spec.estimate) {
    case EstimateKind::RequestTime:
      return std::make_unique<RequestTimeEstimator>();
    case EstimateKind::ActualRuntime:
      return std::make_unique<ActualRuntimeEstimator>();
    case EstimateKind::Noisy:
      return std::make_unique<NoisyEstimator>(spec.noise_fraction, spec.noise_seed);
  }
  return nullptr;
}

}  // namespace

ConfiguredScheduler::ConfiguredScheduler(const SchedulerSpec& spec,
                                         std::unique_ptr<sim::BackfillChooser> chooser)
    : spec_(spec),
      policy_(make_policy(spec.policy)),
      estimator_(make_estimator(spec)),
      chooser_(std::move(chooser)) {}

ConfiguredScheduler::ConfiguredScheduler(const SchedulerSpec& spec)
    : spec_(spec), policy_(make_policy(spec.policy)) {
  if (spec.uses_agent()) {
    throw std::invalid_argument(
        "ConfiguredScheduler: spec references agent '" + spec.agent +
        "'; trained-agent schedulers are resolved by the exp layer "
        "(exp::run_scenario / exp::evaluate_scenario)");
  }
  estimator_ = make_estimator(spec);
  switch (spec.backfill) {
    case BackfillKind::None:
      chooser_ = nullptr;
      break;
    case BackfillKind::Easy:
      chooser_ = std::make_unique<EasyBackfillChooser>(BackfillOrder::QueueOrder);
      break;
    case BackfillKind::EasySjf:
      chooser_ = std::make_unique<EasyBackfillChooser>(BackfillOrder::ShortestFirst);
      break;
    case BackfillKind::EasyBestFit:
      chooser_ = std::make_unique<EasyBackfillChooser>(BackfillOrder::WidestFirst);
      break;
    case BackfillKind::EasyWorstFit:
      chooser_ = std::make_unique<EasyBackfillChooser>(BackfillOrder::NarrowestFirst);
      break;
    case BackfillKind::Conservative:
      chooser_ = std::make_unique<ConservativeBackfillChooser>();
      break;
    case BackfillKind::Slack:
      chooser_ = std::make_unique<SlackBackfillChooser>();
      break;
  }
}

ScheduleOutcome ConfiguredScheduler::run(const swf::Trace& trace) const {
  return run_schedule(trace, *policy_, *estimator_, chooser_.get());
}

}  // namespace rlbf::sched
