// The paper's Table-3 base scheduling policies. All are priority
// functions where a LOWER score is scheduled FIRST:
//
//   FCFS   score = st                    (arrival order)
//   SJF    score = rt                    (shortest request first)
//   WFP3   score = -(wt/rt)^3 * nt       (favors long-waiting, short,
//                                         wide-wait jobs; Tang et al. '09)
//   F1     score = log10(rt)*nt + 870*log10(st)
//                                        (Carastan-Santos & de Camargo,
//                                         SC'17 nonlinear-regression fit)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/event_sim.h"

namespace rlbf::sched {

class FcfsPolicy final : public sim::PriorityPolicy {
 public:
  double score(const swf::Job& job, std::int64_t now) const override;
  std::string name() const override { return "FCFS"; }
  bool time_invariant() const override { return true; }  // score = submit time
};

class SjfPolicy final : public sim::PriorityPolicy {
 public:
  double score(const swf::Job& job, std::int64_t now) const override;
  std::string name() const override { return "SJF"; }
  bool time_invariant() const override { return true; }  // score = request time
};

class Wfp3Policy final : public sim::PriorityPolicy {
 public:
  double score(const swf::Job& job, std::int64_t now) const override;
  std::string name() const override { return "WFP3"; }
};

class F1Policy final : public sim::PriorityPolicy {
 public:
  double score(const swf::Job& job, std::int64_t now) const override;
  std::string name() const override { return "F1"; }
};

/// Construct a policy by its Table-3 name ("FCFS", "SJF", "WFP3", "F1");
/// throws std::invalid_argument for unknown names.
std::unique_ptr<sim::PriorityPolicy> make_policy(const std::string& name);

/// All Table-3 policy names in paper order.
std::vector<std::string> all_policy_names();

}  // namespace rlbf::sched
