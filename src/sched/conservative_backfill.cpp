#include "sched/conservative_backfill.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>

namespace rlbf::sched {

AvailabilityProfile::AvailabilityProfile(std::int64_t now, std::int64_t total)
    : now_(now) {
  if (total <= 0) throw std::invalid_argument("profile: total <= 0");
  breakpoints_.push_back({now, total});
}

AvailabilityProfile AvailabilityProfile::from_cluster(
    const sim::ClusterState& cluster, const swf::Trace& trace,
    const sim::RuntimeEstimator& estimator, std::int64_t now,
    sim::FeatureCache* cache) {
  AvailabilityProfile profile(now, cluster.total_procs());
  for (const auto& r : cluster.running_jobs()) {
    const std::int64_t est = cache != nullptr
                                 ? cache->estimate(estimator, trace, r.job_index)
                                 : estimator.estimate(trace[r.job_index]);
    // Snapshot-only estimated view; see sim::estimated_release.
    const std::int64_t est_end = sim::estimated_release(r, est, now);
    profile.reserve(now, r.procs, est_end - now);
  }
  return profile;
}

std::size_t AvailabilityProfile::segment_index(std::int64_t t) const {
  // Last breakpoint with time <= t; t >= now_ is a precondition.
  std::size_t lo = 0;
  for (std::size_t i = 0; i < breakpoints_.size(); ++i) {
    if (breakpoints_[i].time <= t) lo = i;
    else break;
  }
  return lo;
}

void AvailabilityProfile::insert_breakpoint(std::int64_t t) {
  const std::size_t i = segment_index(t);
  if (breakpoints_[i].time == t) return;
  breakpoints_.insert(breakpoints_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                      {t, breakpoints_[i].free});
}

std::int64_t AvailabilityProfile::earliest_start(std::int64_t procs,
                                                 std::int64_t duration) const {
  if (duration <= 0) duration = 1;
  // Only breakpoint times can be optimal starts: between breakpoints the
  // free level is constant, so feasibility cannot improve. Try each in
  // ascending order and verify every segment overlapping the window
  // [start, start + duration) has enough capacity.
  for (std::size_t i = 0; i < breakpoints_.size(); ++i) {
    const std::int64_t start = std::max(breakpoints_[i].time, now_);
    const std::int64_t end = start + duration;
    bool ok = true;
    for (std::size_t j = 0; j < breakpoints_.size(); ++j) {
      const std::int64_t seg_start = breakpoints_[j].time;
      const std::int64_t seg_end = (j + 1 < breakpoints_.size())
                                       ? breakpoints_[j + 1].time
                                       : std::numeric_limits<std::int64_t>::max();
      if (seg_end <= start) continue;  // segment ends before the window
      if (seg_start >= end) break;     // past the window; later ones too
      if (breakpoints_[j].free < procs) {
        ok = false;
        break;
      }
    }
    if (ok) return start;
  }
  throw std::runtime_error("profile: no feasible start (job wider than machine?)");
}

void AvailabilityProfile::reserve(std::int64_t start, std::int64_t procs,
                                  std::int64_t duration) {
  if (duration <= 0) duration = 1;
  const std::int64_t end = start + duration;
  insert_breakpoint(start);
  insert_breakpoint(end);
  for (auto& seg : breakpoints_) {
    if (seg.time >= start && seg.time < end) {
      seg.free -= procs;
      if (seg.free < 0) throw std::runtime_error("profile: negative capacity");
    }
  }
}

std::int64_t AvailabilityProfile::free_at(std::int64_t t) const {
  return breakpoints_[segment_index(std::max(t, now_))].free;
}

std::vector<std::int64_t> plan_starts(AvailabilityProfile profile,
                                      const std::vector<std::size_t>& order,
                                      const sim::BackfillContext& ctx) {
  std::vector<std::int64_t> starts;
  starts.reserve(order.size());
  for (const std::size_t idx : order) {
    const auto& job = ctx.trace[idx];
    const std::int64_t dur = sim::context_estimate(ctx, idx);
    const std::int64_t s = profile.earliest_start(job.procs(), dur);
    profile.reserve(s, job.procs(), dur);
    starts.push_back(s);
  }
  return starts;
}

namespace {

/// Shared plan-and-compare core: admit the first candidate that delays
/// no queued job's planned start by more than its allowance. The
/// allowance callback receives the queued job's trace index so it can
/// use the context's memoized estimates.
std::optional<std::size_t> choose_with_allowance(
    const sim::BackfillContext& ctx,
    const std::function<std::int64_t(std::size_t)>& allowance) {
  const AvailabilityProfile base = AvailabilityProfile::from_cluster(
      ctx.cluster, ctx.trace, ctx.estimator, ctx.now, ctx.cache);

  // Baseline plan: every queued job packed in priority order.
  const std::vector<std::int64_t> baseline = plan_starts(base, ctx.queue, ctx);

  for (std::size_t c = 0; c < ctx.candidates.size(); ++c) {
    const std::size_t cand = ctx.candidates[c];
    // Plan again with the candidate running *now*; the rest of the queue
    // (minus the candidate) must stay within its delay allowance.
    AvailabilityProfile with_cand = base;
    const auto& cjob = ctx.trace[cand];
    with_cand.reserve(ctx.now, cjob.procs(), sim::context_estimate(ctx, cand));

    std::vector<std::size_t> rest;
    std::vector<std::int64_t> rest_baseline;
    for (std::size_t q = 0; q < ctx.queue.size(); ++q) {
      if (ctx.queue[q] == cand) continue;
      rest.push_back(ctx.queue[q]);
      rest_baseline.push_back(baseline[q]);
    }
    const std::vector<std::int64_t> with_starts = plan_starts(with_cand, rest, ctx);
    bool delays = false;
    for (std::size_t q = 0; q < rest.size(); ++q) {
      if (with_starts[q] > rest_baseline[q] + allowance(rest[q])) {
        delays = true;
        break;
      }
    }
    if (!delays) return c;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::size_t> ConservativeBackfillChooser::choose(
    const sim::BackfillContext& ctx) {
  return choose_with_allowance(ctx, [](std::size_t) { return std::int64_t{0}; });
}

SlackBackfillChooser::SlackBackfillChooser(double slack_factor,
                                           std::int64_t fixed_slack)
    : slack_factor_(slack_factor), fixed_slack_(fixed_slack) {
  if (slack_factor < 0.0 || fixed_slack < 0) {
    throw std::invalid_argument("slack backfilling: negative slack");
  }
}

std::int64_t SlackBackfillChooser::allowance(
    const swf::Job& job, const sim::RuntimeEstimator& estimator) const {
  return allowance_from_estimate(estimator.estimate(job));
}

std::int64_t SlackBackfillChooser::allowance_from_estimate(
    std::int64_t estimate) const {
  const double proportional = slack_factor_ * static_cast<double>(estimate);
  return fixed_slack_ + static_cast<std::int64_t>(proportional);
}

std::optional<std::size_t> SlackBackfillChooser::choose(
    const sim::BackfillContext& ctx) {
  return choose_with_allowance(ctx, [&](std::size_t idx) {
    return allowance_from_estimate(sim::context_estimate(ctx, idx));
  });
}

}  // namespace rlbf::sched
