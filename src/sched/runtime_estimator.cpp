#include "sched/runtime_estimator.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace rlbf::sched {

std::int64_t RequestTimeEstimator::estimate(const swf::Job& job) const {
  return std::max<std::int64_t>(job.request_time(), 1);
}

std::int64_t ActualRuntimeEstimator::estimate(const swf::Job& job) const {
  return std::max<std::int64_t>(job.run_time, 1);
}

NoisyEstimator::NoisyEstimator(double noise_fraction, std::uint64_t seed)
    : noise_fraction_(noise_fraction), seed_(seed) {
  if (noise_fraction < 0.0) {
    throw std::invalid_argument("NoisyEstimator: negative noise fraction");
  }
}

std::int64_t NoisyEstimator::estimate(const swf::Job& job) const {
  // Deterministic per-job stream: same job -> same estimate, always.
  util::Rng rng(seed_ ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(job.id + 1)));
  const double factor = 1.0 + rng.uniform(0.0, noise_fraction_);
  const double ar = static_cast<double>(std::max<std::int64_t>(job.run_time, 1));
  auto est = static_cast<std::int64_t>(std::llround(ar * factor));
  if (job.requested_time > 0) {
    // A deployed predictor is bounded above by the kill limit.
    est = std::min(est, job.requested_time);
  }
  return std::max<std::int64_t>(est, 1);
}

std::string NoisyEstimator::name() const {
  std::ostringstream os;
  os << "Noisy+" << static_cast<int>(std::lround(noise_fraction_ * 100.0)) << "%";
  return os.str();
}

TsafrirEstimator::TsafrirEstimator(const swf::Trace& trace) {
  // Rolling last-two-runtimes window per user, walked in submit order.
  struct History {
    std::int64_t prev1 = -1;  // most recent
    std::int64_t prev2 = -1;
  };
  std::unordered_map<std::int64_t, History> users;
  std::size_t predicted = 0;
  for (const auto& job : trace.jobs()) {
    History& h = users[job.user_id];
    std::int64_t prediction;
    if (h.prev1 >= 0) {
      prediction = (h.prev2 >= 0) ? (h.prev1 + h.prev2) / 2 : h.prev1;
      ++predicted;
    } else {
      prediction = job.request_time();  // no history yet
    }
    prediction = std::max<std::int64_t>(prediction, 1);
    if (job.requested_time > 0) {
      // The original scheme caps at the user estimate (the kill limit).
      prediction = std::min(prediction, job.requested_time);
    }
    predictions_.emplace(job.id, prediction);
    h.prev2 = h.prev1;
    h.prev1 = std::max<std::int64_t>(job.run_time, 1);
  }
  coverage_ = trace.empty()
                  ? 0.0
                  : static_cast<double>(predicted) / static_cast<double>(trace.size());
}

std::int64_t TsafrirEstimator::estimate(const swf::Job& job) const {
  const auto it = predictions_.find(job.id);
  if (it != predictions_.end()) return it->second;
  // Unknown job (e.g. a trace slice re-numbered after construction):
  // fall back to the request time rather than failing.
  return std::max<std::int64_t>(job.request_time(), 1);
}

}  // namespace rlbf::sched
