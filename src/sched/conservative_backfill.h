// Conservative backfilling (Mu'alem & Feitelson, TPDS'01): a candidate
// may run early only if it delays *no* queued job's planned start, not
// just the head job's. Planned starts are computed by greedily packing
// the whole queue (priority order) into the estimated future availability
// profile. Included as the classic strict baseline the related-work
// section contrasts EASY against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_sim.h"

namespace rlbf::sched {

/// Step-function of free processors over future time. Built from the
/// running set's *estimated* completion times; reservations carve
/// capacity out of it.
class AvailabilityProfile {
 public:
  /// Profile with `total` processors free from `now` onward.
  AvailabilityProfile(std::int64_t now, std::int64_t total);

  /// Build from the cluster's running set, using estimated end times
  /// (elapsed estimates clamp to now + 1, as in compute_reservation —
  /// both sites share sim::estimated_release, applied to a snapshot
  /// only; the cluster's actual end times must never be patched).
  /// `cache` optionally memoizes the runtime estimates.
  static AvailabilityProfile from_cluster(const sim::ClusterState& cluster,
                                          const swf::Trace& trace,
                                          const sim::RuntimeEstimator& estimator,
                                          std::int64_t now,
                                          sim::FeatureCache* cache = nullptr);

  /// Earliest time >= now at which `procs` processors stay free for
  /// `duration` seconds.
  std::int64_t earliest_start(std::int64_t procs, std::int64_t duration) const;

  /// Subtract `procs` over [start, start + duration). Throws if that
  /// would drive any segment negative.
  void reserve(std::int64_t start, std::int64_t procs, std::int64_t duration);

  /// Free processors at an instant (for tests/debugging).
  std::int64_t free_at(std::int64_t t) const;

 private:
  // breakpoints_[i] = {t_i, free from t_i until t_{i+1}} ; last segment
  // extends to infinity. Invariant: t strictly increasing.
  struct Segment {
    std::int64_t time;
    std::int64_t free;
  };
  std::vector<Segment> breakpoints_;
  std::int64_t now_;

  std::size_t segment_index(std::int64_t t) const;
  void insert_breakpoint(std::int64_t t);
};

/// Planned start for each job of `order` when greedily packed into the
/// profile in sequence (profile is consumed). Shared by the
/// conservative and slack-based choosers.
std::vector<std::int64_t> plan_starts(AvailabilityProfile profile,
                                      const std::vector<std::size_t>& order,
                                      const sim::BackfillContext& ctx);

class ConservativeBackfillChooser final : public sim::BackfillChooser {
 public:
  std::optional<std::size_t> choose(const sim::BackfillContext& ctx) override;
  std::string name() const override { return "CONS"; }
};

/// Slack-based backfilling (Talby & Feitelson, IPPS/SPDP'99, simplified):
/// a candidate may run early as long as it pushes no queued job's planned
/// start beyond that job's *slack allowance*. Conservative backfilling is
/// the zero-slack special case; EASY is the everyone-but-the-head-job-has
/// -infinite-slack extreme. The allowance here is
///     slack(j) = slack_factor * estimated_runtime(j) + fixed_slack
/// — longer jobs tolerate proportionally more queueing delay, which is
/// the scheme's guiding heuristic.
class SlackBackfillChooser final : public sim::BackfillChooser {
 public:
  explicit SlackBackfillChooser(double slack_factor = 0.5,
                                std::int64_t fixed_slack = 600);

  std::optional<std::size_t> choose(const sim::BackfillContext& ctx) override;
  std::string name() const override { return "SLACK"; }

  /// The delay allowance for one job.
  std::int64_t allowance(const swf::Job& job,
                         const sim::RuntimeEstimator& estimator) const;
  /// Allowance from an already-known runtime estimate.
  std::int64_t allowance_from_estimate(std::int64_t estimate) const;

 private:
  double slack_factor_;
  std::int64_t fixed_slack_;
};

}  // namespace rlbf::sched
