// High-level convenience layer: run a (base policy, backfill strategy,
// estimator) configuration over a trace and get metrics back. This is
// the API the examples and benches use; the paper's named configurations
// (FCFS+EASY, SJF+EASY-AR, ...) construct through SchedulerSpec.
#pragma once

#include <memory>
#include <string>

#include "sched/conservative_backfill.h"
#include "sched/easy_backfill.h"
#include "sched/policies.h"
#include "sched/runtime_estimator.h"
#include "sim/event_sim.h"

namespace rlbf::sched {

/// Per-job results plus the aggregate metrics of one scheduling run.
struct ScheduleOutcome {
  std::vector<sim::JobResult> results;
  sim::ScheduleMetrics metrics;
};

/// Schedule `trace` and compute metrics. `chooser` may be null for a
/// no-backfilling run.
ScheduleOutcome run_schedule(const swf::Trace& trace, const sim::PriorityPolicy& policy,
                             const sim::RuntimeEstimator& estimator,
                             sim::BackfillChooser* chooser,
                             const sim::SimulationOptions& options = {});

/// Backfill strategy selector for SchedulerSpec.
enum class BackfillKind {
  None,          // base policy only
  Easy,          // EASY in queue order (the paper's EASY)
  EasySjf,       // EASY trying shortest candidates first
  EasyBestFit,   // EASY trying widest candidates first
  EasyWorstFit,  // EASY trying narrowest candidates first
  Conservative,  // strict no-delay-for-anyone backfilling
  Slack,         // Talby-Feitelson slack-based (bounded delays allowed)
};

/// Estimate source selector for SchedulerSpec.
enum class EstimateKind {
  RequestTime,   // user wall time (the paper's "EASY")
  ActualRuntime, // oracle (the paper's "EASY-AR")
  Noisy,         // AR * (1 + U(0, noise)) (Figure 1)
};

/// A named scheduler configuration, e.g. {"FCFS", Easy, RequestTime}.
struct SchedulerSpec {
  SchedulerSpec() = default;
  SchedulerSpec(std::string policy_, BackfillKind backfill_,
                EstimateKind estimate_ = EstimateKind::RequestTime,
                double noise_fraction_ = 0.0, std::uint64_t noise_seed_ = 0)
      : policy(std::move(policy_)),
        backfill(backfill_),
        estimate(estimate_),
        noise_fraction(noise_fraction_),
        noise_seed(noise_seed_) {}

  std::string policy = "FCFS";
  BackfillKind backfill = BackfillKind::Easy;
  EstimateKind estimate = EstimateKind::RequestTime;
  double noise_fraction = 0.0;   // used when estimate == Noisy
  std::uint64_t noise_seed = 0;  // used when estimate == Noisy
  /// Trained-agent reference: a model-store training-spec name, store
  /// key, or model file path. Empty = the heuristic `backfill` above.
  /// This layer cannot load models; the exp layer resolves the reference
  /// (model::resolve_agent) and injects the chooser — a plain
  /// ConfiguredScheduler(spec) with a non-empty agent throws.
  std::string agent;

  bool uses_agent() const { return !agent.empty(); }

  /// e.g. "FCFS+EASY", "SJF+EASY-AR", "FCFS+EASY+20%", "FCFS+RLBF".
  std::string label() const;
};

/// Owns the policy/estimator/chooser objects a spec describes.
class ConfiguredScheduler {
 public:
  explicit ConfiguredScheduler(const SchedulerSpec& spec);
  /// Trained-agent form: the caller supplies the backfill chooser (e.g. a
  /// core::RlBackfillChooser over a resolved agent) and the spec's
  /// backfill kind is ignored. The chooser's referents must outlive the
  /// scheduler.
  ConfiguredScheduler(const SchedulerSpec& spec,
                      std::unique_ptr<sim::BackfillChooser> chooser);

  ScheduleOutcome run(const swf::Trace& trace) const;

  const sim::PriorityPolicy& policy() const { return *policy_; }
  const sim::RuntimeEstimator& estimator() const { return *estimator_; }
  /// Null when the spec disables backfilling.
  sim::BackfillChooser* chooser() const { return chooser_.get(); }
  const SchedulerSpec& spec() const { return spec_; }

 private:
  SchedulerSpec spec_;
  std::unique_ptr<sim::PriorityPolicy> policy_;
  std::unique_ptr<sim::RuntimeEstimator> estimator_;
  std::unique_ptr<sim::BackfillChooser> chooser_;
};

}  // namespace rlbf::sched
