// EASY backfilling (Lifka '95): at a backfilling opportunity, a queued
// job may jump the blocked head job if, by the runtime estimates, it
// either finishes before the head job's reservation (shadow time) or
// fits into the processors that remain spare at that reservation.
//
// The ordering in which candidates are tried is configurable:
//   QueueOrder    — base-policy priority order (classic EASY)
//   ShortestFirst — shortest estimated runtime first; combined with an
//                   FCFS base policy this is the paper's "FCFS base +
//                   SJF backfilling" reward baseline.
//   WidestFirst   — most requested processors first ("best fit": soak up
//                   the free block with the fewest backfills, classic
//                   packing heuristic)
//   NarrowestFirst— fewest processors first ("worst fit": start as many
//                   small jobs as possible)
//
// These orderings span the heuristic space the RL agent searches over,
// so benches can show where the learned policy lands relative to each
// fixed rule.
#pragma once

#include <string>

#include "sim/event_sim.h"

namespace rlbf::sched {

enum class BackfillOrder { QueueOrder, ShortestFirst, WidestFirst, NarrowestFirst };

class EasyBackfillChooser final : public sim::BackfillChooser {
 public:
  explicit EasyBackfillChooser(BackfillOrder order = BackfillOrder::QueueOrder);

  std::optional<std::size_t> choose(const sim::BackfillContext& ctx) override;
  std::string name() const override;

  /// The EASY admission test for one candidate against a reservation.
  static bool admissible(const swf::Job& candidate, const sim::Reservation& res,
                         const sim::RuntimeEstimator& estimator, std::int64_t now);

  /// Same test with the runtime estimate supplied by the caller (hot
  /// paths pull it from the per-simulation FeatureCache).
  static bool admissible_with_estimate(const swf::Job& candidate,
                                       const sim::Reservation& res,
                                       std::int64_t estimate, std::int64_t now);

 private:
  BackfillOrder order_;
};

}  // namespace rlbf::sched
