// Extended runtime-prediction substrate beyond runtime_estimator.h's
// paper-exact set. These predictors flesh out the design space the
// paper's Figure 1 opens — "does more accurate runtime prediction always
// lead to better scheduling?" — with the kinds of system-generated
// predictors the related work ([11] Gaussier, [25] Tsafrir, [23] Tanash)
// deploys:
//
//   RecentKEstimator     — mean of the user's K most recent runtimes
//                          (Tsafrir's scheme generalized; K = 2 matches
//                          TsafrirEstimator up to integer rounding).
//   ClassAverageEstimator— running mean per job class, where a class is
//                          (user, executable, requested-proc bucket);
//                          falls back user -> request time while a class
//                          has no history. The classic "similar jobs run
//                          similarly" batch predictor.
//   BlendEstimator       — convex combination of an inner predictor and
//                          the user request time:
//                              est = alpha * inner + (1 - alpha) * RT.
//                          Sweeping alpha from 0 (pure EASY) to 1 (pure
//                          predictor) traces the accuracy/backfilling
//                          trade-off of Figure 2 with a continuous knob —
//                          the ablation bench ablation_predictors uses it.
//   UnderNoisyEstimator  — actual runtime deflated by a random -x% error,
//                          the under-prediction mirror of NoisyEstimator.
//                          Under-predictions make reservations optimistic
//                          and exercise the simulator's expired-estimate
//                          clamp; combined with kill_exceeding_request
//                          they model prediction-driven kill risk.
//
// Like TsafrirEstimator, the history-based predictors precompute their
// per-job predictions from the trace in submit order, which keeps them
// deterministic and schedule-independent (DESIGN.md discusses the
// approximation versus completion-order updates).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/event_sim.h"

namespace rlbf::sched {

class RecentKEstimator final : public sim::RuntimeEstimator {
 public:
  /// predict(j) = mean(actual runtime of the user's previous <= k jobs),
  /// clamped to [1, request time]; request-time fallback without history.
  /// k must be >= 1.
  RecentKEstimator(const swf::Trace& trace, std::size_t k);

  std::int64_t estimate(const swf::Job& job) const override;
  std::string name() const override;

  std::size_t k() const { return k_; }
  /// Fraction of jobs predicted from history (vs request-time fallback).
  double coverage() const { return coverage_; }

 private:
  std::unordered_map<std::int64_t, std::int64_t> predictions_;
  std::size_t k_;
  double coverage_ = 0.0;
};

class ClassAverageEstimator final : public sim::RuntimeEstimator {
 public:
  /// Jobs are bucketed by (user, executable, floor(log2(procs))); each
  /// prediction is the running mean of the class's previous runtimes,
  /// falling back to the user's running mean, then the request time.
  explicit ClassAverageEstimator(const swf::Trace& trace);

  std::int64_t estimate(const swf::Job& job) const override;
  std::string name() const override { return "ClassAverage"; }

  /// Fraction of jobs predicted from class history (not fallbacks).
  double class_coverage() const { return class_coverage_; }

 private:
  std::unordered_map<std::int64_t, std::int64_t> predictions_;
  double class_coverage_ = 0.0;
};

class BlendEstimator final : public sim::RuntimeEstimator {
 public:
  /// `inner` must outlive this estimator. alpha in [0, 1]: 0 = request
  /// time only, 1 = inner only. Estimates are clamped to [1, request
  /// time] like every deployable predictor.
  BlendEstimator(const sim::RuntimeEstimator& inner, double alpha);

  std::int64_t estimate(const swf::Job& job) const override;
  std::string name() const override;

  double alpha() const { return alpha_; }

 private:
  const sim::RuntimeEstimator& inner_;
  double alpha_;
};

class UnderNoisyEstimator final : public sim::RuntimeEstimator {
 public:
  /// estimate = AR * (1 - U(0, noise_fraction)), floored at 1 second.
  /// noise_fraction must lie in [0, 1). Deterministic per (seed, job id)
  /// like NoisyEstimator.
  UnderNoisyEstimator(double noise_fraction, std::uint64_t seed);

  std::int64_t estimate(const swf::Job& job) const override;
  std::string name() const override;

  double noise_fraction() const { return noise_fraction_; }

 private:
  double noise_fraction_;
  std::uint64_t seed_;
};

/// Mean absolute relative prediction error of an estimator over a trace:
/// mean(|est - AR| / max(AR, 1)). The accuracy axis of the Figure-1
/// style accuracy-vs-bsld plots.
double mean_relative_error(const sim::RuntimeEstimator& estimator,
                           const swf::Trace& trace);

}  // namespace rlbf::sched
