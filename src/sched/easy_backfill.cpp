#include "sched/easy_backfill.h"

#include <algorithm>

namespace rlbf::sched {

EasyBackfillChooser::EasyBackfillChooser(BackfillOrder order) : order_(order) {}

bool EasyBackfillChooser::admissible(const swf::Job& candidate,
                                     const sim::Reservation& res,
                                     const sim::RuntimeEstimator& estimator,
                                     std::int64_t now) {
  return admissible_with_estimate(candidate, res, estimator.estimate(candidate), now);
}

bool EasyBackfillChooser::admissible_with_estimate(const swf::Job& candidate,
                                                   const sim::Reservation& res,
                                                   std::int64_t estimate,
                                                   std::int64_t now) {
  const std::int64_t est_end = now + estimate;
  if (est_end <= res.shadow_time) return true;      // done before the reservation
  return candidate.procs() <= res.extra_procs;      // fits the spare processors
}

std::optional<std::size_t> EasyBackfillChooser::choose(const sim::BackfillContext& ctx) {
  // Candidates arrive in priority order; optionally re-rank.
  std::vector<std::size_t> order(ctx.candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  switch (order_) {
    case BackfillOrder::QueueOrder:
      break;
    case BackfillOrder::ShortestFirst:
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return sim::context_estimate(ctx, ctx.candidates[a]) <
               sim::context_estimate(ctx, ctx.candidates[b]);
      });
      break;
    case BackfillOrder::WidestFirst:
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return ctx.trace[ctx.candidates[a]].procs() >
               ctx.trace[ctx.candidates[b]].procs();
      });
      break;
    case BackfillOrder::NarrowestFirst:
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return ctx.trace[ctx.candidates[a]].procs() <
               ctx.trace[ctx.candidates[b]].procs();
      });
      break;
  }
  for (const std::size_t i : order) {
    if (admissible_with_estimate(ctx.trace[ctx.candidates[i]], ctx.reservation,
                                 sim::context_estimate(ctx, ctx.candidates[i]),
                                 ctx.now)) {
      return i;
    }
  }
  return std::nullopt;
}

std::string EasyBackfillChooser::name() const {
  switch (order_) {
    case BackfillOrder::QueueOrder: return "EASY";
    case BackfillOrder::ShortestFirst: return "EASY-SJF";
    case BackfillOrder::WidestFirst: return "EASY-BestFit";
    case BackfillOrder::NarrowestFirst: return "EASY-WorstFit";
  }
  return "EASY";
}

}  // namespace rlbf::sched
