#include "rl/collect.h"

namespace rlbf::rl {

std::vector<SequenceResult> ThreadCollector::collect(const CollectionPlan& plan,
                                                     const SequenceFn& fn) {
  const std::size_t n = plan.seeds.size();
  std::vector<SequenceResult> results(n);
  if (n == 0) return results;
  const std::size_t n_slots = slots(n);
  pool_->parallel_for(n, [&](std::size_t t) {
    results[t] = fn(t, plan.seeds[t], t % n_slots);
  });
  return results;
}

}  // namespace rlbf::rl
