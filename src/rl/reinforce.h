// REINFORCE (Williams 1992) with an optional learned value baseline —
// the vanilla policy-gradient method PPO descends from. Kept as an
// ablation baseline: the paper adopts PPO for its faster, more stable
// convergence (citing Sutton et al.'s policy-gradient results), and
// bench/ablation_rl_algorithm quantifies that choice on the backfilling
// task.
//
// Differences from Ppo on the same RolloutBuffer:
//   * one gradient step per collected batch (no ratio, no clipping —
//     reusing a trajectory would be off-policy);
//   * the policy loss is -mean(log pi(a|s) * weight), where weight is
//     the GAE advantage when the baseline is on, or the raw return when
//     off;
//   * the value head is fitted with `value_iters` MSE steps only when
//     the baseline is enabled.
#pragma once

#include "nn/optim.h"
#include "rl/ppo.h"
#include "rl/rollout.h"
#include "util/rng.h"

namespace rlbf::rl {

struct ReinforceConfig {
  double gamma = 1.0;  // undiscounted, like the paper's PPO setup
  double lambda = 0.97;
  double policy_lr = 1e-3;
  double value_lr = 1e-3;
  /// Fit a value baseline and weight by advantages; without it the raw
  /// (normalized) return weights the gradient — higher variance, the
  /// classic REINFORCE failure mode the ablation demonstrates.
  bool use_baseline = true;
  std::size_t value_iters = 40;
  std::size_t minibatch_size = 1024;
  double entropy_coef = 0.01;
  double max_grad_norm = 10.0;
  bool normalize_weights = true;
};

struct ReinforceStats {
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  std::size_t value_iters = 0;
};

class Reinforce {
 public:
  /// The model must outlive this instance. Only the policy parameters
  /// are touched when use_baseline is false.
  Reinforce(ActorCritic& model, const ReinforceConfig& config);

  /// One policy-gradient step (plus baseline fitting) over a finished
  /// buffer; finish() is called if the caller has not.
  ReinforceStats update(RolloutBuffer& buffer, util::Rng& rng);

  const ReinforceConfig& config() const { return config_; }

 private:
  ActorCritic& model_;
  ReinforceConfig config_;
  nn::Adam policy_opt_;
  nn::Adam value_opt_;
};

}  // namespace rlbf::rl
