// Trajectory storage for PPO. One Step per backfilling decision; one
// Episode per scheduled job sequence (the paper: 256 consecutive jobs
// per trajectory, 100 trajectories per epoch). The buffer computes
// GAE(γ, λ) per episode and normalizes advantages across the epoch, as
// SpinningUp's PPO does.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "rl/gae.h"

namespace rlbf::rl {

/// One decision point.
struct Step {
  /// Per-candidate feature matrix the policy scored (rows = actions).
  nn::Tensor policy_obs;
  /// Valid-action mask over policy_obs rows (1 = selectable).
  std::vector<std::uint8_t> mask;
  /// Chosen row.
  std::size_t action = 0;
  /// Behavior-policy log-probability of `action` at collection time.
  double log_prob = 0.0;
  /// Fixed-size flattened observation for the value network.
  nn::Tensor value_obs;
  /// Critic estimate at collection time.
  double value = 0.0;
  /// Reward observed after this step (0 until the terminal step under
  /// the paper's delayed bsld reward, minus any delay penalties).
  double reward = 0.0;

  // Filled by RolloutBuffer::finish():
  double advantage = 0.0;
  double ret = 0.0;
};

struct Episode {
  std::vector<Step> steps;
  /// Undiscounted sum of rewards (diagnostic).
  double total_reward() const;
};

class RolloutBuffer {
 public:
  void add_episode(Episode episode);
  void clear();

  std::size_t episode_count() const { return episodes_.size(); }
  std::size_t step_count() const;
  bool finished() const { return finished_; }

  const std::vector<Episode>& episodes() const { return episodes_; }

  /// Compute GAE per episode and normalize advantages across all steps.
  /// Must be called exactly once before flat_steps().
  void finish(double gamma, double lambda, bool normalize_advantages = true);

  /// Pointers to every step across episodes (stable once finished).
  std::vector<Step*> flat_steps();

  /// Mean per-episode total reward (diagnostic for training curves).
  double mean_episode_reward() const;

 private:
  std::vector<Episode> episodes_;
  bool finished_ = false;
};

}  // namespace rlbf::rl
