#include "rl/dqn.h"

#include <algorithm>
#include <stdexcept>

namespace rlbf::rl {

Dqn::Dqn(ActorCritic& model, const DqnConfig& config)
    : model_(model),
      config_(config),
      replay_(config.replay_capacity),
      target_(model.clone()),
      opt_(model.policy_parameters(), config.lr) {
  if (config.batch_size == 0) {
    throw std::invalid_argument("Dqn: batch_size must be >= 1");
  }
}

void Dqn::absorb(const Episode& episode) { replay_.add_episode(episode); }

double Dqn::epsilon(std::size_t epoch) const {
  if (config_.epsilon_decay_epochs == 0) return config_.epsilon_end;
  const double f = std::min(1.0, static_cast<double>(epoch) /
                                     static_cast<double>(config_.epsilon_decay_epochs));
  return config_.epsilon_start + f * (config_.epsilon_end - config_.epsilon_start);
}

std::vector<double> Dqn::td_targets(const std::vector<const Transition*>& batch) const {
  // Non-terminal transitions share ONE batched next-state scoring pass
  // (two with double DQN) instead of a forward per transition. Batched
  // scoring is bit-identical per row to per-transition calls, so the
  // targets — and the trained model — are unchanged.
  std::vector<std::size_t> live;
  std::vector<const nn::Tensor*> next_obs;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i]->done) {
      live.push_back(i);
      next_obs.push_back(&batch[i]->next_obs);
    }
  }
  const std::vector<nn::Tensor> target_q = target_->policy_logits_nograd_batch(next_obs);
  std::vector<nn::Tensor> online_q;
  if (config_.double_dqn) {
    // Action selection by the online net, evaluation by the target net —
    // breaks the max-operator overestimation bias.
    online_q = model_.policy_logits_nograd_batch(next_obs);
  }

  std::vector<double> targets;
  targets.reserve(batch.size());
  for (const Transition* t : batch) targets.push_back(t->reward);
  for (std::size_t k = 0; k < live.size(); ++k) {
    const Transition& t = *batch[live[k]];
    const std::size_t best = config_.double_dqn
                                 ? argmax_masked(online_q[k], t.next_mask)
                                 : argmax_masked(target_q[k], t.next_mask);
    targets[live[k]] = t.reward + config_.gamma * target_q[k].at(best, 0);
  }
  return targets;
}

DqnStats Dqn::update(util::Rng& rng) {
  DqnStats stats;
  stats.replay_size = replay_.size();
  if (replay_.size() < std::max<std::size_t>(config_.min_replay, 1)) return stats;

  for (std::size_t step = 0; step < config_.updates_per_epoch; ++step) {
    const auto batch = replay_.sample(config_.batch_size, rng);

    opt_.zero_grad();
    const double inv_n = 1.0 / static_cast<double>(batch.size());
    const std::vector<double> targets = td_targets(batch);
    double loss_sum = 0.0, q_sum = 0.0, y_sum = 0.0;
    for (std::size_t b = 0; b < batch.size(); ++b) {
      const Transition* t = batch[b];
      const double y = targets[b];
      const nn::VarPtr q_all = model_.policy_logits(t->obs);
      const nn::VarPtr q_a = nn::pick(q_all, t->action, 0);
      nn::VarPtr loss = nn::huber(nn::sub(q_a, nn::scalar(y)), config_.huber_delta);
      loss = nn::mul_scalar(loss, inv_n);
      nn::backward(loss);
      loss_sum += loss->value.item() / inv_n;
      q_sum += q_a->value.item();
      y_sum += y;
    }
    opt_.clip_grad_norm(config_.max_grad_norm);
    opt_.step();
    ++stats.gradient_steps;
    stats.loss = loss_sum * inv_n;
    stats.mean_q = q_sum * inv_n;
    stats.mean_target = y_sum * inv_n;

    if (++steps_since_sync_ >= config_.target_sync_every) {
      target_->sync_from(model_);
      steps_since_sync_ = 0;
      ++stats.target_syncs;
    }
  }
  return stats;
}

}  // namespace rlbf::rl
