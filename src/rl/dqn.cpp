#include "rl/dqn.h"

#include <algorithm>
#include <stdexcept>

namespace rlbf::rl {

Dqn::Dqn(ActorCritic& model, const DqnConfig& config)
    : model_(model),
      config_(config),
      replay_(config.replay_capacity),
      target_(model.clone()),
      opt_(model.policy_parameters(), config.lr) {
  if (config.batch_size == 0) {
    throw std::invalid_argument("Dqn: batch_size must be >= 1");
  }
}

void Dqn::absorb(const Episode& episode) { replay_.add_episode(episode); }

double Dqn::epsilon(std::size_t epoch) const {
  if (config_.epsilon_decay_epochs == 0) return config_.epsilon_end;
  const double f = std::min(1.0, static_cast<double>(epoch) /
                                     static_cast<double>(config_.epsilon_decay_epochs));
  return config_.epsilon_start + f * (config_.epsilon_end - config_.epsilon_start);
}

double Dqn::td_target(const Transition& t) const {
  if (t.done) return t.reward;
  const nn::Tensor target_q = target_->policy_logits_nograd(t.next_obs);
  std::size_t best;
  if (config_.double_dqn) {
    // Action selection by the online net, evaluation by the target net —
    // breaks the max-operator overestimation bias.
    const nn::Tensor online_q = model_.policy_logits_nograd(t.next_obs);
    best = argmax_masked(online_q, t.next_mask);
  } else {
    best = argmax_masked(target_q, t.next_mask);
  }
  return t.reward + config_.gamma * target_q.at(best, 0);
}

DqnStats Dqn::update(util::Rng& rng) {
  DqnStats stats;
  stats.replay_size = replay_.size();
  if (replay_.size() < std::max<std::size_t>(config_.min_replay, 1)) return stats;

  for (std::size_t step = 0; step < config_.updates_per_epoch; ++step) {
    const auto batch = replay_.sample(config_.batch_size, rng);

    opt_.zero_grad();
    const double inv_n = 1.0 / static_cast<double>(batch.size());
    double loss_sum = 0.0, q_sum = 0.0, y_sum = 0.0;
    for (const Transition* t : batch) {
      const double y = td_target(*t);
      const nn::VarPtr q_all = model_.policy_logits(t->obs);
      const nn::VarPtr q_a = nn::pick(q_all, t->action, 0);
      nn::VarPtr loss = nn::huber(nn::sub(q_a, nn::scalar(y)), config_.huber_delta);
      loss = nn::mul_scalar(loss, inv_n);
      nn::backward(loss);
      loss_sum += loss->value.item() / inv_n;
      q_sum += q_a->value.item();
      y_sum += y;
    }
    opt_.clip_grad_norm(config_.max_grad_norm);
    opt_.step();
    ++stats.gradient_steps;
    stats.loss = loss_sum * inv_n;
    stats.mean_q = q_sum * inv_n;
    stats.mean_target = y_sum * inv_n;

    if (++steps_since_sync_ >= config_.target_sync_every) {
      target_->sync_from(model_);
      steps_since_sync_ = 0;
      ++stats.target_syncs;
    }
  }
  return stats;
}

}  // namespace rlbf::rl
