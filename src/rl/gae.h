// Generalized Advantage Estimation (Schulman et al., 2016) as pure
// functions over reward/value sequences — kept free of buffer plumbing
// so the recurrences are directly unit-testable.
#pragma once

#include <vector>

namespace rlbf::rl {

struct GaeResult {
  std::vector<double> advantages;
  std::vector<double> returns;  // advantage + value (the TD(lambda) target)
};

/// Compute GAE(gamma, lambda) for one finished episode. `rewards[t]` is
/// the reward received after taking the action at step t; `values[t]` is
/// the critic's estimate at step t. The state after the last step is
/// terminal (bootstrap value 0).
GaeResult compute_gae(const std::vector<double>& rewards,
                      const std::vector<double>& values, double gamma, double lambda);

/// Plain discounted reward-to-go (GAE with lambda = 1 advantage base).
std::vector<double> discounted_returns(const std::vector<double>& rewards, double gamma);

/// In-place shift/scale to zero mean, unit std (std floor 1e-8). No-op
/// on empty input; single elements normalize to 0.
void normalize(std::vector<double>& xs);

}  // namespace rlbf::rl
