// The rollout wire format: how a collect-rollouts worker process ships
// an epoch's sequence results back to the learner.
//
// A versioned binary container, explicitly little-endian so files read
// identically across hosts in a heterogeneous fleet:
//
//   magic "RLBFROLL" | u32 version | fingerprint (length-prefixed)
//   | u64 sequence count | sequences... | u64 FNV-1a checksum
//
// Every variable-size field is length-prefixed, doubles travel as raw
// IEEE-754 bit patterns (bit-exact — the transport must never perturb a
// reward or observation), and the trailing checksum covers everything
// before it. The embedded fingerprint names the REQUEST the file
// answers (spec + epoch + worker + seed subset): a supervisor decoding
// with the expected fingerprint can never consume a stale file from a
// previous epoch or a different run, even on a reused scratch dir.
//
// Episodes are serialized as collected — Step::advantage/ret are
// learner-side derivations (RolloutBuffer::finish) and are not
// transported; decode restores their collection-time zeros.
//
// Every decode failure is a named WireError (truncation, bad magic,
// unsupported version, checksum mismatch, fingerprint mismatch) — a
// corrupt or mismatched file must fail loudly, never train quietly.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "rl/collect.h"

namespace rlbf::rl {

/// Decode/read failure with a message naming the defect and offset.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialize an epoch's results. `fingerprint` is stored verbatim and
/// re-checked on decode.
std::string encode_rollouts(const std::vector<SequenceResult>& results,
                            const std::string& fingerprint);

/// Inverse of encode_rollouts. Throws WireError on any malformed input
/// or when the embedded fingerprint differs from `expected_fingerprint`
/// (pass "" to skip the fingerprint check).
std::vector<SequenceResult> decode_rollouts(
    const std::string& bytes, const std::string& expected_fingerprint);

/// File forms. save_rollouts writes atomically (tmp + rename) so a
/// crashed worker never leaves a torn file a retry could half-read;
/// both throw WireError on I/O failure.
void save_rollouts(const std::string& path,
                   const std::vector<SequenceResult>& results,
                   const std::string& fingerprint);
std::vector<SequenceResult> load_rollouts(
    const std::string& path, const std::string& expected_fingerprint);

}  // namespace rlbf::rl
