#include "rl/replay.h"

#include <stdexcept>

namespace rlbf::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("ReplayBuffer: capacity must be >= 1");
  }
  storage_.reserve(capacity);
}

void ReplayBuffer::add(Transition t) {
  ++added_;
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(t));
    return;
  }
  storage_[next_slot_] = std::move(t);
  next_slot_ = (next_slot_ + 1) % capacity_;
}

void ReplayBuffer::add_episode(const Episode& episode) {
  const auto& steps = episode.steps;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    Transition t;
    t.obs = steps[i].policy_obs;
    t.mask = steps[i].mask;
    t.action = steps[i].action;
    t.reward = steps[i].reward;
    if (i + 1 < steps.size()) {
      t.next_obs = steps[i + 1].policy_obs;
      t.next_mask = steps[i + 1].mask;
      t.done = false;
    } else {
      t.done = true;
    }
    add(std::move(t));
  }
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t batch,
                                                    util::Rng& rng) const {
  if (storage_.empty()) {
    throw std::invalid_argument("ReplayBuffer::sample: empty buffer");
  }
  std::vector<const Transition*> out;
  out.reserve(batch);
  const auto n = static_cast<std::int64_t>(storage_.size());
  for (std::size_t i = 0; i < batch; ++i) {
    out.push_back(&storage_[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
  }
  return out;
}

}  // namespace rlbf::rl
