#include "rl/reinforce.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlbf::rl {

Reinforce::Reinforce(ActorCritic& model, const ReinforceConfig& config)
    : model_(model),
      config_(config),
      policy_opt_(model.policy_parameters(), config.policy_lr),
      value_opt_(model.value_parameters(), config.value_lr) {}

ReinforceStats Reinforce::update(RolloutBuffer& buffer, util::Rng& rng) {
  if (!buffer.finished()) {
    // Advantage normalization is deferred: REINFORCE-without-baseline
    // normalizes the raw returns instead, below.
    buffer.finish(config_.gamma, config_.lambda, /*normalize_advantages=*/false);
  }
  const std::vector<Step*> steps = buffer.flat_steps();
  if (steps.empty()) throw std::invalid_argument("Reinforce::update: empty buffer");

  // Gradient weight per step: advantage (baseline on) or return.
  std::vector<double> weights(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    weights[i] = config_.use_baseline ? steps[i]->advantage : steps[i]->ret;
  }
  if (config_.normalize_weights && weights.size() > 1) {
    double mean = 0.0;
    for (double w : weights) mean += w;
    mean /= static_cast<double>(weights.size());
    double var = 0.0;
    for (double w : weights) var += (w - mean) * (w - mean);
    const double sd = std::sqrt(var / static_cast<double>(weights.size()));
    for (double& w : weights) w = (w - mean) / (sd + 1e-8);
  }

  ReinforceStats stats;

  // --- single policy-gradient step over the whole batch ---
  policy_opt_.zero_grad();
  const double inv_n = 1.0 / static_cast<double>(steps.size());
  double loss_sum = 0.0, entropy_sum = 0.0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Step* s = steps[i];
    const nn::VarPtr logits = model_.policy_logits(s->policy_obs);
    const nn::VarPtr logp_all = nn::masked_log_softmax(logits, s->mask);
    const nn::VarPtr logp_a = nn::pick(logp_all, s->action, 0);
    nn::VarPtr loss = nn::neg(nn::mul_scalar(logp_a, weights[i]));
    const nn::VarPtr entropy = nn::masked_entropy(logp_all, s->mask);
    if (config_.entropy_coef > 0.0) {
      loss = nn::sub(loss, nn::mul_scalar(entropy, config_.entropy_coef));
    }
    loss = nn::mul_scalar(loss, inv_n);
    nn::backward(loss);
    loss_sum += loss->value.item() / inv_n;
    entropy_sum += entropy->value.item();
  }
  policy_opt_.clip_grad_norm(config_.max_grad_norm);
  policy_opt_.step();
  stats.policy_loss = loss_sum * inv_n;
  stats.entropy = entropy_sum * inv_n;

  // --- baseline fitting ---
  if (config_.use_baseline) {
    for (std::size_t iter = 0; iter < config_.value_iters; ++iter) {
      // Minibatch sampling mirrors Ppo::sample_minibatch.
      std::vector<const Step*> mb;
      if (config_.minibatch_size == 0 || steps.size() <= config_.minibatch_size) {
        mb.assign(steps.begin(), steps.end());
      } else {
        mb.reserve(config_.minibatch_size);
        const auto n = static_cast<std::int64_t>(steps.size());
        for (std::size_t i = 0; i < config_.minibatch_size; ++i) {
          mb.push_back(steps[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
        }
      }
      value_opt_.zero_grad();
      const double inv_mb = 1.0 / static_cast<double>(mb.size());
      double vloss_sum = 0.0;
      for (const Step* s : mb) {
        const nn::VarPtr v = model_.value(s->value_obs);
        nn::VarPtr loss = nn::square(nn::sub(v, nn::scalar(s->ret)));
        loss = nn::mul_scalar(loss, inv_mb);
        nn::backward(loss);
        vloss_sum += loss->value.item() / inv_mb;
      }
      value_opt_.clip_grad_norm(config_.max_grad_norm);
      value_opt_.step();
      stats.value_loss = vloss_sum * inv_mb;
      ++stats.value_iters;
    }
  }
  return stats;
}

}  // namespace rlbf::rl
