#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlbf::rl {

std::vector<nn::Tensor> ActorCritic::policy_logits_nograd_batch(
    const std::vector<const nn::Tensor*>& obs) const {
  std::vector<nn::Tensor> out;
  out.reserve(obs.size());
  for (const nn::Tensor* o : obs) out.push_back(policy_logits_nograd(*o));
  return out;
}

CategoricalSample sample_masked(const nn::Tensor& logits,
                                const std::vector<std::uint8_t>& mask, util::Rng& rng) {
  if (logits.cols() != 1 || logits.rows() != mask.size()) {
    throw std::invalid_argument("sample_masked: bad shapes");
  }
  double zmax = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) zmax = std::max(zmax, logits.at(i, 0));
  }
  if (zmax == -std::numeric_limits<double>::infinity()) {
    throw std::invalid_argument("sample_masked: all actions masked");
  }
  std::vector<double> probs(mask.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) {
      probs[i] = std::exp(logits.at(i, 0) - zmax);
      total += probs[i];
    }
  }
  const std::size_t action = rng.categorical(probs);
  CategoricalSample out;
  out.action = action;
  out.log_prob = std::log(probs[action] / total);
  return out;
}

std::size_t argmax_masked(const nn::Tensor& logits,
                          const std::vector<std::uint8_t>& mask) {
  if (logits.cols() != 1 || logits.rows() != mask.size()) {
    throw std::invalid_argument("argmax_masked: bad shapes");
  }
  std::size_t best = mask.size();
  double best_v = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] && logits.at(i, 0) > best_v) {
      best_v = logits.at(i, 0);
      best = i;
    }
  }
  if (best == mask.size()) {
    throw std::invalid_argument("argmax_masked: all actions masked");
  }
  return best;
}

struct Ppo::ShardGrads {
  double loss_sum = 0.0;
  double kl_sum = 0.0;
  double entropy_sum = 0.0;
  std::size_t clip_count = 0;
  std::size_t n = 0;
  double inv_batch = 1.0;  // 1 / minibatch size (loss scaling)
};

Ppo::Ppo(ActorCritic& model, const PpoConfig& config, util::ThreadPool* pool)
    : model_(model),
      config_(config),
      pool_(pool),
      policy_opt_(model.policy_parameters(), config.policy_lr),
      value_opt_(model.value_parameters(), config.value_lr) {
  // One replica per gradient shard, independent of the pool size: the
  // shard structure (and thus the reduction order) must not change with
  // the worker count or trained models would differ across machines.
  if (pool_ != nullptr) {
    for (std::size_t i = 0; i < config_.grad_shards; ++i) {
      replicas_.push_back(model_.clone());
    }
  }
}

void Ppo::policy_shard(const std::vector<Step*>& steps, ActorCritic& replica,
                       ShardGrads& out) const {
  for (const Step* s : steps) {
    const nn::VarPtr logits = replica.policy_logits(s->policy_obs);
    const nn::VarPtr logp_all = nn::masked_log_softmax(logits, s->mask);
    const nn::VarPtr logp_a = nn::pick(logp_all, s->action, 0);
    const nn::VarPtr ratio = nn::exp_act(nn::sub(logp_a, nn::scalar(s->log_prob)));
    const nn::VarPtr surr1 = nn::mul_scalar(ratio, s->advantage);
    const nn::VarPtr surr2 = nn::mul_scalar(
        nn::clamp(ratio, 1.0 - config_.clip_ratio, 1.0 + config_.clip_ratio),
        s->advantage);
    nn::VarPtr loss = nn::neg(nn::minimum(surr1, surr2));
    const nn::VarPtr entropy = nn::masked_entropy(logp_all, s->mask);
    if (config_.entropy_coef > 0.0) {
      loss = nn::sub(loss, nn::mul_scalar(entropy, config_.entropy_coef));
    }
    loss = nn::mul_scalar(loss, out.inv_batch);
    nn::backward(loss);

    out.loss_sum += loss->value.item() / out.inv_batch;
    out.kl_sum += s->log_prob - logp_a->value.item();
    out.entropy_sum += entropy->value.item();
    const double r = ratio->value.item();
    if (r < 1.0 - config_.clip_ratio || r > 1.0 + config_.clip_ratio) ++out.clip_count;
    ++out.n;
  }
}

void Ppo::value_shard(const std::vector<Step*>& steps, ActorCritic& replica,
                      ShardGrads& out) const {
  if (steps.empty()) return;
  // One batched critic forward for the whole shard instead of a graph
  // pass per step. This is bit-identical to the historical per-step
  // loop: forward rows are row-independent; the weight/bias gradient of
  // a B-row matmul accumulates over rows in exactly the order the
  // per-step accumulate_grad calls did; and the per-row losses are
  // extracted and summed below in step order.
  nn::Tensor stacked(steps.size(), steps.front()->value_obs.cols());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const nn::Tensor& o = steps[i]->value_obs;
    for (std::size_t c = 0; c < o.cols(); ++c) stacked.at(i, c) = o.at(0, c);
  }
  const nn::VarPtr v_all = replica.value(stacked);
  nn::VarPtr total;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const nn::VarPtr v = nn::pick(v_all, i, 0);
    nn::VarPtr loss = nn::square(nn::sub(v, nn::scalar(steps[i]->ret)));
    loss = nn::mul_scalar(loss, out.inv_batch);
    out.loss_sum += loss->value.item() / out.inv_batch;
    ++out.n;
    total = total == nullptr ? loss : nn::add(total, loss);
  }
  nn::backward(total);
}

std::vector<Step*> Ppo::sample_minibatch(const std::vector<Step*>& all,
                                         util::Rng& rng) const {
  if (config_.minibatch_size == 0 || all.size() <= config_.minibatch_size) return all;
  std::vector<Step*> mb;
  mb.reserve(config_.minibatch_size);
  const auto n = static_cast<std::int64_t>(all.size());
  for (std::size_t i = 0; i < config_.minibatch_size; ++i) {
    mb.push_back(all[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
  }
  return mb;
}

namespace {

/// Zero p's grads, run `shards` (one per replica slice), then reduce the
/// replica gradients into the master parameters.
void reduce_grads(const std::vector<nn::VarPtr>& master,
                  const std::vector<std::vector<nn::VarPtr>>& replica_params) {
  for (const auto& rp : replica_params) {
    for (std::size_t i = 0; i < master.size(); ++i) {
      if (rp[i]->has_grad()) master[i]->accumulate_grad(rp[i]->grad);
    }
  }
}

}  // namespace

PpoStats Ppo::update(RolloutBuffer& buffer, util::Rng& rng) {
  if (!buffer.finished()) {
    buffer.finish(config_.gamma, config_.lambda, config_.normalize_advantages);
  }
  const std::vector<Step*> all = buffer.flat_steps();
  if (all.empty()) throw std::invalid_argument("Ppo::update: empty buffer");

  PpoStats stats;

  // Run one minibatch through (policy|value) shards, possibly in
  // parallel, and leave reduced gradients on the master parameters.
  const auto run_batch = [&](const std::vector<Step*>& mb, bool policy) -> ShardGrads {
    ShardGrads total;
    total.inv_batch = 1.0 / static_cast<double>(mb.size());
    if (pool_ == nullptr || replicas_.empty() || mb.size() < 64) {
      total.inv_batch = 1.0 / static_cast<double>(mb.size());
      if (policy) {
        policy_shard(mb, model_, total);
      } else {
        value_shard(mb, model_, total);
      }
      return total;
    }
    const std::size_t shards = std::min(replicas_.size(), mb.size());
    std::vector<ShardGrads> grads(shards);
    std::vector<std::vector<Step*>> slices(shards);
    for (std::size_t i = 0; i < mb.size(); ++i) slices[i % shards].push_back(mb[i]);
    pool_->parallel_for(shards, [&](std::size_t k) {
      auto& replica = *replicas_[k];
      replica.sync_from(model_);
      for (const auto& p : replica.policy_parameters()) p->zero_grad();
      for (const auto& p : replica.value_parameters()) p->zero_grad();
      grads[k].inv_batch = total.inv_batch;
      if (policy) {
        policy_shard(slices[k], replica, grads[k]);
      } else {
        value_shard(slices[k], replica, grads[k]);
      }
    });
    std::vector<std::vector<nn::VarPtr>> replica_params;
    replica_params.reserve(shards);
    for (std::size_t k = 0; k < shards; ++k) {
      replica_params.push_back(policy ? replicas_[k]->policy_parameters()
                                      : replicas_[k]->value_parameters());
    }
    reduce_grads(policy ? model_.policy_parameters() : model_.value_parameters(),
                 replica_params);
    for (const auto& g : grads) {
      total.loss_sum += g.loss_sum;
      total.kl_sum += g.kl_sum;
      total.entropy_sum += g.entropy_sum;
      total.clip_count += g.clip_count;
      total.n += g.n;
    }
    return total;
  };

  // --- policy iterations with approximate-KL early stopping ---
  for (std::size_t iter = 0; iter < config_.train_iters; ++iter) {
    const std::vector<Step*> mb = sample_minibatch(all, rng);
    policy_opt_.zero_grad();
    const ShardGrads g = run_batch(mb, /*policy=*/true);
    const auto n = static_cast<double>(std::max<std::size_t>(g.n, 1));
    stats.approx_kl = g.kl_sum / n;
    stats.policy_loss = g.loss_sum / n;
    stats.entropy = g.entropy_sum / n;
    stats.clip_fraction = static_cast<double>(g.clip_count) / n;
    if (config_.target_kl > 0.0 && stats.approx_kl > 1.5 * config_.target_kl) {
      // SpinningUp convention: stop before applying this update.
      break;
    }
    stats.grad_norm = policy_opt_.clip_grad_norm(config_.max_grad_norm);
    policy_opt_.step();
    ++stats.policy_iters;
  }

  // --- value iterations ---
  for (std::size_t iter = 0; iter < config_.train_iters; ++iter) {
    const std::vector<Step*> mb = sample_minibatch(all, rng);
    value_opt_.zero_grad();
    const ShardGrads g = run_batch(mb, /*policy=*/false);
    stats.value_loss = g.loss_sum / static_cast<double>(std::max<std::size_t>(g.n, 1));
    value_opt_.clip_grad_norm(config_.max_grad_norm);
    value_opt_.step();
    ++stats.value_iters;
  }
  return stats;
}

}  // namespace rlbf::rl
