// Deep Q-Network (Mnih et al. 2015) over the backfilling decision space,
// with the Double-DQN target correction (van Hasselt et al. 2016) on by
// default. The paper explicitly prefers PPO over Deep-Q-Learning for its
// convergence behavior (§2.2.1, citing policy-gradient convergence
// assurances); this implementation exists to *measure* that choice —
// bench/ablation_rl_algorithm trains PPO, DQN, and REINFORCE on the same
// trace and compares their curves and final greedy bsld.
//
// The Q-function reuses the kernel scorer: an ActorCritic's policy head
// maps each candidate row to a scalar, read here as Q(s, a) rather than
// a logit. A trained Q-model therefore deploys through the exact same
// greedy argmax path (core::Agent / RlBackfillChooser) as a PPO policy.
// The critic head is unused.
//
// Fit: y = r                                  for terminal transitions,
//      y = r + gamma * Q_target(s', a*)       otherwise, with
//      a* = argmax_a Q_online(s', a)  (double DQN) or the target net's
//      own argmax (vanilla). Loss is the Huber of (Q(s,a) - y).
#pragma once

#include <memory>

#include "nn/optim.h"
#include "rl/ppo.h"
#include "rl/replay.h"
#include "util/rng.h"

namespace rlbf::rl {

struct DqnConfig {
  /// 1.0 (undiscounted) matches the episodic terminal-reward objective.
  double gamma = 1.0;
  double lr = 1e-3;
  std::size_t batch_size = 64;
  /// Gradient steps per update() call (one call per training epoch, so
  /// this parallels PPO's 80 update iterations).
  std::size_t updates_per_epoch = 80;
  /// Copy online -> target every this many gradient steps.
  std::size_t target_sync_every = 200;
  std::size_t replay_capacity = 50000;
  /// update() is a no-op until the replay holds this many transitions.
  std::size_t min_replay = 512;
  bool double_dqn = true;
  double huber_delta = 1.0;
  double max_grad_norm = 10.0;

  // Epsilon-greedy exploration schedule, linear in the epoch index.
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::size_t epsilon_decay_epochs = 20;
};

struct DqnStats {
  double loss = 0.0;           // mean Huber loss, last gradient step
  double mean_q = 0.0;         // mean chosen-action Q, last gradient step
  double mean_target = 0.0;    // mean TD target, last gradient step
  std::size_t gradient_steps = 0;
  std::size_t target_syncs = 0;
  std::size_t replay_size = 0;
};

class Dqn {
 public:
  /// `model` is the online network (must outlive this instance); the
  /// target network is cloned from it at construction.
  Dqn(ActorCritic& model, const DqnConfig& config);

  /// Store an episode's transitions in the replay buffer.
  void absorb(const Episode& episode);

  /// Run config.updates_per_epoch gradient steps over replay minibatches
  /// (no-op while the replay is below min_replay).
  DqnStats update(util::Rng& rng);

  /// Exploration rate for a given training epoch under the linear decay.
  double epsilon(std::size_t epoch) const;

  const ReplayBuffer& replay() const { return replay_; }
  const ActorCritic& target() const { return *target_; }
  const DqnConfig& config() const { return config_; }

 private:
  /// TD targets for a whole minibatch (no gradient): non-terminal
  /// next-states are scored in one batched pass per network.
  std::vector<double> td_targets(const std::vector<const Transition*>& batch) const;

  ActorCritic& model_;
  DqnConfig config_;
  ReplayBuffer replay_;
  std::unique_ptr<ActorCritic> target_;
  nn::Adam opt_;
  std::size_t steps_since_sync_ = 0;
};

}  // namespace rlbf::rl
