#include "rl/wire.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "nn/tensor.h"

namespace rlbf::rl {

namespace {

constexpr char kMagic[8] = {'R', 'L', 'B', 'F', 'R', 'O', 'L', 'L'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t fnv1a64(const char* data, std::size_t size) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

// ---- encoding (explicit little-endian, so files are host-portable) ----

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_tensor(std::string& out, const nn::Tensor& t) {
  put_u64(out, t.rows());
  put_u64(out, t.cols());
  for (const double v : t.data()) put_f64(out, v);
}

// ---- decoding, with every bound checked before it is trusted ----

struct Reader {
  const std::string& bytes;
  std::size_t pos = 0;

  void need(std::size_t n, const char* what) const {
    if (bytes.size() - pos < n) {
      throw WireError("rollout wire: truncated input (need " +
                      std::to_string(n) + " byte(s) for " + what +
                      " at offset " + std::to_string(pos) + ", have " +
                      std::to_string(bytes.size() - pos) + ")");
    }
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes[pos + i]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }

  double f64(const char* what) {
    const std::uint64_t bits = u64(what);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// A length prefix is only trusted after checking the payload it
  /// promises actually fits in the remaining bytes — a corrupted count
  /// must raise a truncation error, not a giant allocation.
  std::uint64_t count(std::uint64_t element_bytes, const char* what) {
    const std::uint64_t n = u64(what);
    if (element_bytes != 0 && n > (bytes.size() - pos) / element_bytes) {
      throw WireError("rollout wire: truncated input (" + std::string(what) +
                      " claims " + std::to_string(n) +
                      " element(s), more than the remaining " +
                      std::to_string(bytes.size() - pos) + " byte(s) hold)");
    }
    return n;
  }

  nn::Tensor tensor(const char* what) {
    const std::uint64_t rows = u64(what);
    const std::uint64_t cols = u64(what);
    if (rows != 0 && cols > (bytes.size() - pos) / 8 / rows) {
      throw WireError("rollout wire: truncated input (" + std::string(what) +
                      " claims a " + std::to_string(rows) + "x" +
                      std::to_string(cols) + " tensor beyond the remaining " +
                      std::to_string(bytes.size() - pos) + " byte(s))");
    }
    nn::Tensor t(rows, cols);
    for (double& v : t.data()) v = f64(what);
    return t;
  }
};

}  // namespace

std::string encode_rollouts(const std::vector<SequenceResult>& results,
                            const std::string& fingerprint) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kVersion);
  put_u64(out, fingerprint.size());
  out += fingerprint;
  put_u64(out, results.size());
  for (const SequenceResult& r : results) {
    put_f64(out, r.bsld);
    put_f64(out, r.baseline_bsld);
    put_u64(out, r.episode.steps.size());
    for (const Step& s : r.episode.steps) {
      put_tensor(out, s.policy_obs);
      put_u64(out, s.mask.size());
      for (const std::uint8_t m : s.mask) out += static_cast<char>(m);
      put_u64(out, s.action);
      put_f64(out, s.log_prob);
      put_tensor(out, s.value_obs);
      put_f64(out, s.value);
      put_f64(out, s.reward);
    }
  }
  put_u64(out, fnv1a64(out.data(), out.size()));
  return out;
}

std::vector<SequenceResult> decode_rollouts(
    const std::string& bytes, const std::string& expected_fingerprint) {
  Reader r{bytes};
  r.need(sizeof(kMagic), "magic");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw WireError("rollout wire: bad magic (not a rollout file)");
  }
  r.pos = sizeof(kMagic);
  const std::uint32_t version = r.u32("version");
  if (version != kVersion) {
    throw WireError("rollout wire: unsupported version " +
                    std::to_string(version) + " (this build reads version " +
                    std::to_string(kVersion) + ")");
  }
  // Checksum before content: a flipped byte anywhere must be reported as
  // corruption, not as whatever field it happened to land in.
  if (bytes.size() < r.pos + 8) {
    throw WireError("rollout wire: truncated input (no checksum trailer)");
  }
  {
    Reader tail{bytes, bytes.size() - 8};
    const std::uint64_t stored = tail.u64("checksum");
    const std::uint64_t computed = fnv1a64(bytes.data(), bytes.size() - 8);
    if (stored != computed) {
      throw WireError("rollout wire: checksum mismatch (file corrupted)");
    }
  }
  const std::string body(bytes.data(), bytes.size() - 8);
  Reader in{body, r.pos};
  const std::uint64_t fp_len = in.count(1, "fingerprint");
  const std::string fingerprint = body.substr(in.pos, fp_len);
  in.pos += fp_len;
  if (!expected_fingerprint.empty() && fingerprint != expected_fingerprint) {
    throw WireError("rollout wire: fingerprint mismatch (expected '" +
                    expected_fingerprint + "', file carries '" + fingerprint +
                    "') — stale or mismatched rollout response");
  }
  // 24 bytes is the smallest possible sequence (two doubles + step count).
  const std::uint64_t n = in.count(24, "sequence count");
  std::vector<SequenceResult> results(n);
  for (SequenceResult& seq : results) {
    seq.bsld = in.f64("bsld");
    seq.baseline_bsld = in.f64("baseline_bsld");
    const std::uint64_t steps = in.count(8 * 8, "step count");
    seq.episode.steps.resize(steps);
    for (Step& s : seq.episode.steps) {
      s.policy_obs = in.tensor("policy_obs");
      const std::uint64_t mask_len = in.count(1, "mask");
      s.mask.resize(mask_len);
      for (std::uint8_t& m : s.mask) {
        in.need(1, "mask byte");
        m = static_cast<std::uint8_t>(body[in.pos++]);
      }
      s.action = in.u64("action");
      s.log_prob = in.f64("log_prob");
      s.value_obs = in.tensor("value_obs");
      s.value = in.f64("value");
      s.reward = in.f64("reward");
    }
  }
  if (in.pos != body.size()) {
    throw WireError("rollout wire: " +
                    std::to_string(body.size() - in.pos) +
                    " trailing byte(s) after the last sequence");
  }
  return results;
}

void save_rollouts(const std::string& path,
                   const std::vector<SequenceResult>& results,
                   const std::string& fingerprint) {
  const std::string bytes = encode_rollouts(results, fingerprint);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw WireError("rollout wire: cannot open " + tmp + " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) throw WireError("rollout wire: cannot write " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw WireError("rollout wire: cannot move " + tmp + " to " + path + ": " +
                    ec.message());
  }
}

std::vector<SequenceResult> load_rollouts(
    const std::string& path, const std::string& expected_fingerprint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw WireError("rollout wire: cannot read " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    throw WireError("rollout wire: read error on " + path);
  }
  try {
    return decode_rollouts(bytes, expected_fingerprint);
  } catch (const WireError& e) {
    throw WireError(std::string(e.what()) + " [" + path + "]");
  }
}

}  // namespace rlbf::rl
