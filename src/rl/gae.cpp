#include "rl/gae.h"

#include <cmath>
#include <stdexcept>

namespace rlbf::rl {

GaeResult compute_gae(const std::vector<double>& rewards,
                      const std::vector<double>& values, double gamma, double lambda) {
  if (rewards.size() != values.size()) {
    throw std::invalid_argument("compute_gae: rewards/values size mismatch");
  }
  const std::size_t n = rewards.size();
  GaeResult out;
  out.advantages.resize(n);
  out.returns.resize(n);
  double adv = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    const double next_value = (i + 1 < n) ? values[i + 1] : 0.0;
    const double delta = rewards[i] + gamma * next_value - values[i];
    adv = delta + gamma * lambda * adv;
    out.advantages[i] = adv;
    out.returns[i] = adv + values[i];
  }
  return out;
}

std::vector<double> discounted_returns(const std::vector<double>& rewards, double gamma) {
  std::vector<double> out(rewards.size());
  double acc = 0.0;
  for (std::size_t i = rewards.size(); i-- > 0;) {
    acc = rewards[i] + gamma * acc;
    out[i] = acc;
  }
  return out;
}

void normalize(std::vector<double>& xs) {
  if (xs.empty()) return;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  const double stddev = std::sqrt(var) + 1e-8;
  for (auto& x : xs) x = (x - mean) / stddev;
}

}  // namespace rlbf::rl
