// Experience replay for value-based RL (DQN). Where PPO's RolloutBuffer
// holds whole on-policy episodes and is cleared after one update, the
// replay buffer stores individual (s, a, r, s') transitions in a fixed-
// capacity ring and samples them uniformly — the decorrelation trick
// that makes Q-learning with function approximation stable (Mnih et al.
// 2015).
//
// Transitions are derived from the same rl::Episode the PPO path
// collects, so DQN and PPO train from byte-identical environment
// interactions in the algorithm ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "rl/rollout.h"
#include "util/rng.h"

namespace rlbf::rl {

/// One (s, a, r, s', done) tuple over the backfilling decision space.
/// States are the per-candidate policy observations; the action space
/// (rows + mask) differs between s and s', which is why the successor's
/// observation and mask are stored explicitly.
struct Transition {
  nn::Tensor obs;                       // rows x F candidate matrix
  std::vector<std::uint8_t> mask;       // valid rows of obs
  std::size_t action = 0;               // chosen row
  double reward = 0.0;
  nn::Tensor next_obs;                  // empty when done
  std::vector<std::uint8_t> next_mask;  // empty when done
  bool done = false;
};

class ReplayBuffer {
 public:
  /// `capacity` must be >= 1; the oldest transition is evicted when full.
  explicit ReplayBuffer(std::size_t capacity);

  void add(Transition t);
  /// Split an episode into its steps' transitions (step i's successor is
  /// step i+1; the final step is terminal) and add them all.
  void add_episode(const Episode& episode);

  std::size_t size() const { return storage_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return storage_.empty(); }
  /// Total transitions ever added (diagnostic; >= size()).
  std::size_t added() const { return added_; }

  /// Uniform sample with replacement of `batch` stored transitions.
  /// Throws if the buffer is empty. Pointers remain valid until the
  /// next add() call.
  std::vector<const Transition*> sample(std::size_t batch, util::Rng& rng) const;

  const Transition& operator[](std::size_t i) const { return storage_[i]; }

 private:
  std::size_t capacity_;
  std::size_t next_slot_ = 0;  // ring cursor once at capacity
  std::size_t added_ = 0;
  std::vector<Transition> storage_;
};

}  // namespace rlbf::rl
