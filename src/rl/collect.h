// The collector seam of the actor/learner split: trajectory PRODUCTION
// (sampling a sequence, simulating the baseline, rolling the policy out)
// is separated from trajectory CONSUMPTION (the PPO/DQN/REINFORCE
// updates), so the same learner loop can collect over an in-process
// thread pool or a fleet of worker processes without forking the three
// trainer implementations.
//
// The determinism contract every transport must honor:
//   * the learner pre-draws one seed per sequence on its own RNG stream
//     (CollectionPlan::seeds), so nothing downstream consumes learner
//     randomness;
//   * a sequence's result is a pure function of (seed, trace, policy,
//     model parameters, environment config) — never of which worker,
//     thread, or host produced it;
//   * results come back indexed by sequence, in sequence order.
// Under that contract every transport — any thread count, any worker
// count — produces byte-identical epochs, which is what keeps model
// store keys and golden benches stable across --threads and
// --rollout_workers.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "rl/rollout.h"
#include "util/thread_pool.h"

namespace rlbf::rl {

/// What collecting one sequence yields: the episode the TrainingEnv
/// recorded plus the two diagnostics every trainer aggregates.
struct SequenceResult {
  Episode episode;
  double bsld = 0.0;
  double baseline_bsld = 0.0;
};

/// One epoch's collection request. The seeds are pre-drawn by the
/// learner (sequence i always collects with seeds[i]); epoch and epsilon
/// exist for transports that must reproduce the learner's per-epoch
/// environment remotely (epsilon is the DQN exploration rate; NaN when
/// the algorithm has none).
struct CollectionPlan {
  std::vector<std::uint64_t> seeds;
  std::size_t epoch = 0;  // 1-based epoch being collected (labels/files)
  double epsilon = std::numeric_limits<double>::quiet_NaN();
};

/// Produce sequence `index` with `seed`. `slot` addresses the
/// caller-provisioned model replica the sequence may read
/// (0 <= slot < Collector::slots()); transports that never invoke the
/// function in-process report zero slots and ignore it.
using SequenceFn =
    std::function<SequenceResult(std::size_t index, std::uint64_t seed,
                                 std::size_t slot)>;

/// A rollout transport. collect() returns exactly
/// plan.seeds.size() results in sequence order.
class Collector {
 public:
  virtual ~Collector() = default;

  /// How many in-process replica slots the caller must provision before
  /// collect() (model replicas are read concurrently, so each slot gets
  /// a private copy). 0 means the transport never runs fn locally.
  virtual std::size_t slots(std::size_t n_sequences) const = 0;

  virtual std::vector<SequenceResult> collect(const CollectionPlan& plan,
                                              const SequenceFn& fn) = 0;
};

/// The in-process transport: today's thread-pool collection, verbatim.
/// Sequence t runs on replica slot t % slots — the exact replica
/// assignment the pre-seam trainers used — so refactored epochs are
/// bit-identical to the originals.
class ThreadCollector : public Collector {
 public:
  /// `pool` must outlive the collector.
  explicit ThreadCollector(util::ThreadPool& pool) : pool_(&pool) {}

  std::size_t slots(std::size_t n_sequences) const override {
    return std::min(pool_->size(), n_sequences);
  }

  std::vector<SequenceResult> collect(const CollectionPlan& plan,
                                      const SequenceFn& fn) override;

 private:
  util::ThreadPool* pool_;
};

}  // namespace rlbf::rl
