// Proximal Policy Optimization (Schulman et al. 2017), following the
// OpenAI SpinningUp reference the paper implements against: clipped
// surrogate objective, separate policy/value Adam optimizers, K update
// iterations per epoch with approximate-KL early stopping for the
// policy, GAE-lambda advantages normalized per epoch.
//
// The policy is a masked categorical over a variable number of
// candidates: the ActorCritic scores each observation row and PPO
// renormalizes over the step's valid-action mask. Updates can fan out
// over a thread pool (per-thread model replicas, gradient reduction on
// the caller thread).
#pragma once

#include <memory>

#include "nn/optim.h"
#include "rl/rollout.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rlbf::rl {

/// The model PPO trains: a row-scoring policy and a scalar critic.
class ActorCritic {
 public:
  virtual ~ActorCritic() = default;

  /// Logits column (rows x 1) over the observation's rows, as a graph.
  virtual nn::VarPtr policy_logits(const nn::Tensor& policy_obs) const = 0;
  /// Critic estimate (1 x 1) of the flattened observation, as a graph.
  virtual nn::VarPtr value(const nn::Tensor& value_obs) const = 0;

  /// Graph-free fast paths used during rollout collection.
  virtual nn::Tensor policy_logits_nograd(const nn::Tensor& policy_obs) const = 0;
  virtual double value_nograd(const nn::Tensor& value_obs) const = 0;

  /// Score many observations in one pass where the model supports it
  /// (DQN target batches). Bit-identical element-wise to calling
  /// policy_logits_nograd once per observation; the base implementation
  /// is exactly that loop. `obs` pointers must be non-null.
  virtual std::vector<nn::Tensor> policy_logits_nograd_batch(
      const std::vector<const nn::Tensor*>& obs) const;

  virtual std::vector<nn::VarPtr> policy_parameters() const = 0;
  virtual std::vector<nn::VarPtr> value_parameters() const = 0;

  /// Independent deep copy (worker-thread replica).
  virtual std::unique_ptr<ActorCritic> clone() const = 0;
  /// Overwrite parameter values from a same-shaped model.
  virtual void sync_from(const ActorCritic& other) = 0;
};

/// Masked-categorical helpers over a logits column.
struct CategoricalSample {
  std::size_t action = 0;
  double log_prob = 0.0;
};
/// Sample from softmax(logits[mask]); used during training rollouts.
CategoricalSample sample_masked(const nn::Tensor& logits,
                                const std::vector<std::uint8_t>& mask, util::Rng& rng);
/// Argmax over valid entries; used at test time ("during testing, we
/// directly select the job with the highest probability").
std::size_t argmax_masked(const nn::Tensor& logits,
                          const std::vector<std::uint8_t>& mask);

struct PpoConfig {
  /// 1.0 (undiscounted) matches the paper's delayed terminal reward —
  /// "only accumulated rewards are used for training".
  double gamma = 1.0;
  double lambda = 0.97;
  double clip_ratio = 0.2;
  double policy_lr = 1e-3;  // the paper's learning rate
  double value_lr = 1e-3;
  std::size_t train_iters = 80;  // the paper's 80 update iterations
  /// Steps per update iteration; 0 = full batch (SpinningUp behavior,
  /// expensive for large buffers).
  std::size_t minibatch_size = 1024;
  /// Entropy bonus coefficient. SpinningUp defaults to 0; a small bonus
  /// keeps the masked categorical from collapsing early on the long
  /// sparse-reward episodes this problem produces.
  double entropy_coef = 0.01;
  /// Stop policy iterations when approx-KL exceeds 1.5x this; <= 0
  /// disables early stopping.
  double target_kl = 0.015;
  double max_grad_norm = 10.0;
  bool normalize_advantages = true;
  /// Gradient shards per minibatch when a thread pool is available. The
  /// shard count is FIXED (not derived from the pool size) so the
  /// floating-point reduction order — and therefore the trained model —
  /// is bit-identical at any thread count; shards are merely distributed
  /// over however many workers exist. 0 disables sharding.
  std::size_t grad_shards = 8;
};

struct PpoStats {
  double policy_loss = 0.0;   // last-iteration clipped surrogate
  double value_loss = 0.0;    // last-iteration MSE
  double approx_kl = 0.0;     // last policy iteration estimate
  double entropy = 0.0;       // mean over last policy minibatch
  std::size_t policy_iters = 0;
  std::size_t value_iters = 0;
  double clip_fraction = 0.0;  // fraction of clipped ratios, last iter
  /// Pre-clip policy gradient L2 norm, last applied iteration (the
  /// value clip_grad_norm measured before scaling). 0 when no policy
  /// iteration applied its update.
  double grad_norm = 0.0;
};

class Ppo {
 public:
  /// `pool` may be null (single-threaded updates). The model reference
  /// must outlive the Ppo instance.
  Ppo(ActorCritic& model, const PpoConfig& config, util::ThreadPool* pool = nullptr);

  /// One PPO epoch over a finished buffer (finish() already called —
  /// update() calls it if not). `rng` drives minibatch sampling.
  PpoStats update(RolloutBuffer& buffer, util::Rng& rng);

  const PpoConfig& config() const { return config_; }

 private:
  struct ShardGrads;

  /// Mean policy loss + grads for a shard of steps on a replica.
  void policy_shard(const std::vector<Step*>& steps, ActorCritic& replica,
                    ShardGrads& out) const;
  void value_shard(const std::vector<Step*>& steps, ActorCritic& replica,
                   ShardGrads& out) const;

  std::vector<Step*> sample_minibatch(const std::vector<Step*>& all,
                                      util::Rng& rng) const;

  ActorCritic& model_;
  PpoConfig config_;
  util::ThreadPool* pool_;
  nn::Adam policy_opt_;
  nn::Adam value_opt_;
  std::vector<std::unique_ptr<ActorCritic>> replicas_;
};

}  // namespace rlbf::rl
