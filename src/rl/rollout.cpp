#include "rl/rollout.h"

#include <stdexcept>

namespace rlbf::rl {

double Episode::total_reward() const {
  double s = 0.0;
  for (const auto& st : steps) s += st.reward;
  return s;
}

void RolloutBuffer::add_episode(Episode episode) {
  if (finished_) throw std::logic_error("RolloutBuffer: add after finish");
  episodes_.push_back(std::move(episode));
}

void RolloutBuffer::clear() {
  episodes_.clear();
  finished_ = false;
}

std::size_t RolloutBuffer::step_count() const {
  std::size_t n = 0;
  for (const auto& e : episodes_) n += e.steps.size();
  return n;
}

void RolloutBuffer::finish(double gamma, double lambda, bool normalize_advantages) {
  if (finished_) throw std::logic_error("RolloutBuffer: finish twice");
  for (auto& e : episodes_) {
    std::vector<double> rewards, values;
    rewards.reserve(e.steps.size());
    values.reserve(e.steps.size());
    for (const auto& s : e.steps) {
      rewards.push_back(s.reward);
      values.push_back(s.value);
    }
    const GaeResult gae = compute_gae(rewards, values, gamma, lambda);
    for (std::size_t i = 0; i < e.steps.size(); ++i) {
      e.steps[i].advantage = gae.advantages[i];
      e.steps[i].ret = gae.returns[i];
    }
  }
  if (normalize_advantages) {
    std::vector<double> advs;
    advs.reserve(step_count());
    for (const auto& e : episodes_) {
      for (const auto& s : e.steps) advs.push_back(s.advantage);
    }
    normalize(advs);
    std::size_t i = 0;
    for (auto& e : episodes_) {
      for (auto& s : e.steps) s.advantage = advs[i++];
    }
  }
  finished_ = true;
}

std::vector<Step*> RolloutBuffer::flat_steps() {
  if (!finished_) throw std::logic_error("RolloutBuffer: flat_steps before finish");
  std::vector<Step*> out;
  out.reserve(step_count());
  for (auto& e : episodes_) {
    for (auto& s : e.steps) out.push_back(&s);
  }
  return out;
}

double RolloutBuffer::mean_episode_reward() const {
  if (episodes_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& e : episodes_) s += e.total_reward();
  return s / static_cast<double>(episodes_.size());
}

}  // namespace rlbf::rl
